//! Compaction snapshots: the archive's full contents up to a segment
//! watermark, stored as one checksummed file so recovery replays only the
//! live WAL suffix.
//!
//! A snapshot `snap-<seq>.snap` covers every segment with sequence number
//! `<= seq`. It is published atomically (write to a temp file, fsync,
//! rename) so a crash mid-snapshot leaves the previous snapshot and the
//! full segment chain intact. The file reuses the WAL frame format: a
//! header frame (magic, version, watermark, batch count) followed by one
//! batch frame per publish batch, in original publish order.

use super::codec::{decode_batch, encode_batch};
use super::segment::io_err;
use crate::api::StoreError;
use crate::frame::{frame, FrameRead, FrameReader};
use orchestra_updates::{Epoch, Transaction};
use std::fs;
use std::io::{BufReader, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// File extension for snapshots.
pub const SNAPSHOT_EXT: &str = "snap";

const MAGIC: &[u8; 4] = b"OSNP";
const VERSION: u8 = 1;

/// Name of the snapshot covering segments `<= seq`.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:016x}.{SNAPSHOT_EXT}")
}

/// Parse a snapshot file name back to its covered-through watermark.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snap-")?;
    let hex = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Watermarks of all snapshots in `dir`, ascending.
pub fn list_snapshots(dir: &Path) -> crate::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read_dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read_dir", dir, &e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_snapshot_file_name(name) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Segments `<= covered_seq` are folded into this snapshot.
    pub covered_seq: u64,
    /// The archived batches, in original publish order.
    pub batches: Vec<SnapshotBatch>,
}

/// One batch inside a snapshot, with its frame offset so fetches can read
/// it back without decoding the whole file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBatch {
    /// Byte offset of the batch's frame within the snapshot file.
    pub offset: u64,
    /// The publish epoch.
    pub epoch: Epoch,
    /// The batch's transactions.
    pub txns: Vec<Transaction>,
}

fn header_payload(covered_seq: u64, batch_count: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&covered_seq.to_le_bytes());
    out.extend_from_slice(&batch_count.to_le_bytes());
    out
}

fn parse_header(payload: &[u8], path: &Path) -> crate::Result<(u64, u64)> {
    let corrupt = |reason: String| StoreError::Corrupt {
        path: path.display().to_string(),
        offset: 0,
        reason,
    };
    if payload.len() != 21 {
        return Err(corrupt(format!(
            "header is {} bytes, want 21",
            payload.len()
        )));
    }
    // analyze: allow(panic) -- header length checked (21 bytes) just above
    if &payload[0..4] != MAGIC {
        return Err(corrupt("bad snapshot magic".into()));
    }
    // analyze: allow(panic) -- header length checked (21 bytes) just above
    if payload[4] != VERSION {
        return Err(corrupt(format!(
            "unsupported snapshot version {}",
            payload[4] // analyze: allow(panic) -- header length checked (21 bytes) just above
        )));
    }
    // analyze: allow(panic) -- 8-byte slice of the length-checked 21-byte header; try_into is infallible
    let covered = u64::from_le_bytes(payload[5..13].try_into().expect("8 bytes"));
    // analyze: allow(panic) -- 8-byte slice of the length-checked 21-byte header; try_into is infallible
    let count = u64::from_le_bytes(payload[13..21].try_into().expect("8 bytes"));
    Ok((covered, count))
}

/// Incrementally builds a snapshot file, holding one batch in memory at a
/// time; the result becomes visible only on [`finish`](Self::finish)
/// (temp file + rename), so a crash mid-build changes nothing.
pub struct SnapshotWriter {
    dir: PathBuf,
    tmp_path: PathBuf,
    final_path: PathBuf,
    file: fs::File,
    covered_seq: u64,
    count: u64,
    pos: u64,
}

impl SnapshotWriter {
    /// Start building the snapshot covering segments `<= covered_seq`.
    pub fn begin(dir: &Path, covered_seq: u64) -> crate::Result<Self> {
        let final_path = dir.join(snapshot_file_name(covered_seq));
        let tmp_path = dir.join(format!(".{}.tmp", snapshot_file_name(covered_seq)));
        let mut file = fs::File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, &e))?;
        // Placeholder header (count patched in finish; the header frame
        // has a fixed size, so an in-place rewrite is safe).
        let header = frame(&header_payload(covered_seq, 0));
        file.write_all(&header)
            .map_err(|e| io_err("write", &tmp_path, &e))?;
        Ok(SnapshotWriter {
            dir: dir.to_path_buf(),
            tmp_path,
            final_path,
            file,
            covered_seq,
            count: 0,
            pos: header.len() as u64,
        })
    }

    /// Append one batch; returns the frame offset it will have in the
    /// finished snapshot.
    pub fn append_batch(&mut self, epoch: Epoch, txns: &[Transaction]) -> crate::Result<u64> {
        // Failpoint `store.snapshot.write`: the tmp file is abandoned and
        // swept at the next open; the previous snapshot stays published.
        if orchestra_fault::check("store.snapshot.write").is_some() {
            return Err(super::segment::injected_err("write", &self.tmp_path));
        }
        let framed = frame(&encode_batch(epoch, txns));
        self.file
            .write_all(&framed)
            .map_err(|e| io_err("write", &self.tmp_path, &e))?;
        let offset = self.pos;
        self.pos += framed.len() as u64;
        self.count += 1;
        Ok(offset)
    }

    /// Patch the final batch count into the header, fsync, and atomically
    /// publish the snapshot.
    pub fn finish(mut self) -> crate::Result<()> {
        // Failpoint `store.snapshot.finish`: fail just before the atomic
        // rename — the worst possible moment, with the full file written.
        if orchestra_fault::check("store.snapshot.finish").is_some() {
            return Err(super::segment::injected_err("rename", &self.final_path));
        }
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek", &self.tmp_path, &e))?;
        self.file
            .write_all(&frame(&header_payload(self.covered_seq, self.count)))
            .map_err(|e| io_err("write header", &self.tmp_path, &e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync", &self.tmp_path, &e))?;
        fs::rename(&self.tmp_path, &self.final_path)
            .map_err(|e| io_err("rename", &self.final_path, &e))?;
        sync_dir(&self.dir)
    }
}

/// Write the snapshot covering segments `<= covered_seq` atomically into
/// `dir`; returns the frame offset of each batch in publish order.
pub fn write_snapshot(
    dir: &Path,
    covered_seq: u64,
    batches: &[(Epoch, Vec<Transaction>)],
) -> crate::Result<Vec<u64>> {
    let mut writer = SnapshotWriter::begin(dir, covered_seq)?;
    let mut offsets = Vec::with_capacity(batches.len());
    for (epoch, txns) in batches {
        offsets.push(writer.append_batch(*epoch, txns)?);
    }
    writer.finish()?;
    Ok(offsets)
}

/// Stream the snapshot with the given watermark, invoking `visit` per
/// batch in publish order — one batch resident at a time. Fully validates
/// frames, header, and batch count; returns the batch count.
pub fn stream_snapshot(
    dir: &Path,
    covered_seq: u64,
    mut visit: impl FnMut(SnapshotBatch) -> crate::Result<()>,
) -> crate::Result<u64> {
    let path = dir.join(snapshot_file_name(covered_seq));
    let corrupt = |offset: u64, reason: String| StoreError::Corrupt {
        path: path.display().to_string(),
        offset,
        reason,
    };
    let file = fs::File::open(&path).map_err(|e| io_err("open", &path, &e))?;
    let mut reader = FrameReader::new(BufReader::new(file), 0);
    let next_frame = |reader: &mut FrameReader<BufReader<fs::File>>| {
        let (offset, outcome) = reader.next_frame().map_err(|e| io_err("read", &path, &e))?;
        match outcome {
            FrameRead::Ok { payload, .. } => Ok((offset, Some(payload))),
            FrameRead::Eof => Ok((offset, None)),
            FrameRead::Torn => Err(corrupt(offset, "snapshot ends mid-frame".into())),
            FrameRead::Corrupt { reason, .. } => Err(corrupt(offset, reason)),
        }
    };

    let (_, header) = next_frame(&mut reader)?;
    let header = header.ok_or_else(|| corrupt(0, "empty snapshot file".into()))?;
    let (stored_covered, count) = parse_header(&header, &path)?;
    if stored_covered != covered_seq {
        return Err(corrupt(
            0,
            format!("watermark mismatch: file says {stored_covered}, name says {covered_seq}"),
        ));
    }

    let mut seen = 0u64;
    loop {
        let (frame_start, payload) = next_frame(&mut reader)?;
        let Some(payload) = payload else { break };
        let (epoch, txns) = decode_batch(&payload)
            .map_err(|e| corrupt(frame_start, format!("undecodable batch: {e}")))?;
        visit(SnapshotBatch {
            offset: frame_start,
            epoch,
            txns,
        })?;
        seen += 1;
    }
    if seen != count {
        return Err(corrupt(
            reader.offset(),
            format!("batch count mismatch: header says {count}, found {seen}"),
        ));
    }
    Ok(seen)
}

/// Load and fully validate the snapshot with the given watermark,
/// materializing every batch (tests and small archives; large archives
/// should use [`stream_snapshot`]).
pub fn load_snapshot(dir: &Path, covered_seq: u64) -> crate::Result<Snapshot> {
    let mut batches = Vec::new();
    stream_snapshot(dir, covered_seq, |b| {
        batches.push(b);
        Ok(())
    })?;
    Ok(Snapshot {
        covered_seq,
        batches,
    })
}

pub use super::segment::sync_dir;

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, TxnId, Update};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orchestra-snapshot-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(epoch: u64, peer: &str, seq: u64) -> (Epoch, Vec<Transaction>) {
        (
            Epoch::new(epoch),
            vec![Transaction::new(
                TxnId::new(PeerId::new(peer), seq),
                Epoch::new(epoch),
                vec![Update::insert("R", tuple![seq as i64])],
            )],
        )
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(parse_snapshot_file_name(&snapshot_file_name(12)), Some(12));
        assert_eq!(parse_snapshot_file_name("wal-0000000000000001.seg"), None);
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let batches = vec![batch(1, "A", 1), batch(2, "B", 1), batch(2, "A", 2)];
        let offsets = write_snapshot(&dir, 7, &batches).unwrap();
        assert_eq!(offsets.len(), 3);
        assert_eq!(list_snapshots(&dir).unwrap(), vec![7]);
        let snap = load_snapshot(&dir, 7).unwrap();
        assert_eq!(snap.covered_seq, 7);
        assert_eq!(snap.batches.len(), 3);
        for ((batch, loaded), offset) in batches.iter().zip(&snap.batches).zip(&offsets) {
            assert_eq!(loaded.epoch, batch.0);
            assert_eq!(loaded.txns, batch.1);
            assert_eq!(loaded.offset, *offset);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_corrupt() {
        let dir = tmp_dir("truncated");
        write_snapshot(&dir, 3, &[batch(1, "A", 1), batch(2, "A", 2)]).unwrap();
        let path = dir.join(snapshot_file_name(3));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            load_snapshot(&dir, 3),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_batches_detected_via_count() {
        let dir = tmp_dir("count");
        // Hand-assemble a snapshot claiming 2 batches but holding 1.
        let path = dir.join(snapshot_file_name(1));
        let mut bytes = frame(&header_payload(1, 2));
        let (ep, txns) = batch(1, "A", 1);
        bytes.extend_from_slice(&frame(&encode_batch(ep, &txns)));
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            load_snapshot(&dir, 1),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
