//! The durable update archive: a crash-recoverable [`UpdateStore`] backed
//! by a write-ahead log of checksummed frames, sealed segments, and
//! epoch-indexed compaction snapshots.
//!
//! The paper's CDSS assumes "published transactions are stored in a
//! peer-to-peer distributed database" that peers fetch from after
//! arbitrary offline periods. [`InMemoryStore`](crate::InMemoryStore) and
//! [`ReplicatedStore`](crate::ReplicatedStore) model the *distribution*
//! aspects of that archive; this module supplies the missing property —
//! **durability**. Every published batch is appended as one checksummed
//! frame before `publish` returns, so:
//!
//! * a restarted peer process reopens the archive and finds exactly the
//!   batches that were durable at the crash (the torn tail of a
//!   mid-append crash is truncated away, never half-applied);
//! * archives larger than RAM remain fetchable ([`CacheMode::DiskOnly`]
//!   keeps only a location index in memory);
//! * recovery cost is bounded by the live WAL suffix: [`compact`] folds
//!   sealed segments into a snapshot file and deletes them.
//!
//! ```no_run
//! use orchestra_store::{DurableStore, UpdateStore};
//! use orchestra_updates::Epoch;
//!
//! let store = DurableStore::open("/var/lib/orchestra/archive").unwrap();
//! let all = store.fetch_since(Epoch::zero()).unwrap(); // survives restarts
//! ```
//!
//! [`compact`]: DurableStore::compact

pub mod codec;
pub mod segment;
pub mod snapshot;
pub mod wal;

pub use wal::SyncPolicy;

use crate::api::{
    check_batch_ids, check_epoch_monotone, collect_page, index_epoch_ids, AtomicStats,
};
use crate::api::{AbsorbReport, FetchCursor, FetchPage, StoreError, StoreStats, UpdateStore};
use orchestra_updates::{Epoch, Transaction, TxnId};
use parking_lot::RwLock;
use snapshot::{list_snapshots, snapshot_file_name};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::{Path, PathBuf};
use wal::{read_batch_from, Wal};

/// Whether fetched transactions are served from RAM or re-read from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Tiered mode: decoded transactions stay cached in memory, so the
    /// hot fetch path never touches disk. The default.
    #[default]
    Cached,
    /// Keep only the location index in memory and decode from disk per
    /// fetch: supports archives larger than RAM.
    DiskOnly,
}

/// Tunables for [`DurableStore::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_max_bytes: u64,
    /// When appends reach stable storage.
    pub sync_policy: SyncPolicy,
    /// Read-path tiering.
    pub cache: CacheMode,
    /// Automatically [`compact`](DurableStore::compact) after this many
    /// publishes (`None` = manual compaction only).
    pub compact_every_batches: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            segment_max_bytes: 8 * 1024 * 1024,
            sync_policy: SyncPolicy::Always,
            cache: CacheMode::Cached,
            compact_every_batches: None,
        }
    }
}

/// Durability/compaction counters beyond the common [`StoreStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurableStats {
    /// Live WAL segments (sealed + active).
    pub segments: usize,
    /// Bytes in the active segment.
    pub active_segment_bytes: u64,
    /// The current snapshot's covered-through segment, if any.
    pub snapshot_watermark: Option<u64>,
    /// Transactions replayed from disk at open.
    pub recovered_txns: u64,
    /// Torn bytes truncated from the WAL tail at open.
    pub torn_bytes_truncated: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Auto-compactions that failed (the triggering publishes still
    /// succeeded; see [`DurableStore::last_compaction_error`]).
    pub failed_compactions: u64,
    /// Corrupt frames skipped — at open (their ids are unknown and simply
    /// absent) or during compaction streaming.
    pub corrupt_frames_skipped: u64,
    /// Archived positions currently quarantined by [`DurableStore::scrub`]:
    /// the id is known but its payload was corrupt on disk, awaiting a
    /// healthy copy from a mesh neighbor.
    pub quarantined: u64,
    /// Quarantined positions healed by [`UpdateStore::absorb`] since open.
    pub healed: u64,
}

/// What one [`DurableStore::scrub`] pass found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Files (segments + snapshot) whose frames were verified.
    pub files_scanned: usize,
    /// Corrupt frames found in this pass.
    pub corrupt_frames: usize,
    /// Transactions newly moved to quarantine by this pass.
    pub quarantined: usize,
}

/// Where one transaction's batch frame lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FileRef {
    Segment(u64),
    Snapshot(u64),
}

#[derive(Debug, Clone, Copy)]
struct Location {
    file: FileRef,
    offset: u64,
    /// Position of the transaction within its batch.
    index: u32,
}

#[derive(Debug)]
struct Inner {
    wal: Wal,
    /// TxnId → on-disk location (always resident: the metadata tier).
    index: HashMap<TxnId, Location>,
    /// Epoch → txn ids, for `fetch_since` range scans.
    by_epoch: BTreeMap<Epoch, Vec<TxnId>>,
    /// Decoded-transaction tier (populated only in [`CacheMode::Cached`]).
    cache: HashMap<TxnId, Transaction>,
    /// Archived positions whose on-disk frame failed its checksum: the id
    /// stays listed in `by_epoch` (pages report it unavailable) but has
    /// no `index` location and no cache entry until `absorb` re-delivers
    /// a healthy copy from a neighbor.
    quarantined: HashMap<TxnId, Epoch>,
    snapshot_watermark: Option<u64>,
    batches_since_compact: u64,
    last_compact_error: Option<StoreError>,
    dstats: DurableStats,
}

/// The WAL-backed durable archive. See the [module docs](self).
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    opts: DurableOptions,
    inner: RwLock<Inner>,
    stats: AtomicStats,
    /// Held for the store's lifetime: an exclusive advisory lock on the
    /// archive directory. Two stores appending to one WAL would corrupt
    /// each other's offsets and compact files out from under each other.
    _lock: fs::File,
}

impl DurableStore {
    /// Open (or create) the archive in `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> crate::Result<Self> {
        DurableStore::open_with(dir, DurableOptions::default())
    }

    /// Open (or create) the archive in `dir`.
    ///
    /// Recovery: load the newest snapshot (older ones and segments it
    /// covers are garbage from an interrupted compaction and are
    /// deleted), replay every newer segment, and truncate a torn tail on
    /// the active segment.
    pub fn open_with(dir: impl AsRef<Path>, opts: DurableOptions) -> crate::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| segment::io_err("create_dir_all", &dir, &e))?;
        let lock = lock_dir(&dir)?;

        // Tmp files from a crashed snapshot write are invisible to
        // recovery by construction; sweep them so they don't accumulate.
        remove_stale_tmp_files(&dir)?;

        let mut index = HashMap::new();
        let mut by_epoch: BTreeMap<Epoch, Vec<TxnId>> = BTreeMap::new();
        let mut cache = HashMap::new();

        let snaps = list_snapshots(&dir)?;
        let watermark = snaps.last().copied();
        if let Some(w) = watermark {
            // Stream-validate the newest snapshot *before* deleting any
            // older one: until this load succeeds, an older snapshot may
            // be the only surviving copy of compacted data.
            snapshot::stream_snapshot(&dir, w, |batch| {
                index_batch(
                    &mut index,
                    &mut by_epoch,
                    &mut cache,
                    opts.cache,
                    FileRef::Snapshot(w),
                    batch.offset,
                    batch.epoch,
                    batch.txns,
                );
                Ok(())
            })?;
            // Stale lower snapshots: compaction deletes them after the
            // rename; finish the job if a crash intervened.
            for &old in snaps.iter().filter(|&&s| s != w) {
                let path = dir.join(snapshot_file_name(old));
                fs::remove_file(&path).map_err(|e| segment::io_err("remove", &path, &e))?;
            }
        }

        let (wal, recovery) = Wal::open(&dir, watermark, opts.segment_max_bytes, opts.sync_policy)?;
        for batch in recovery.batches {
            index_batch(
                &mut index,
                &mut by_epoch,
                &mut cache,
                opts.cache,
                FileRef::Segment(batch.segment),
                batch.offset,
                batch.epoch,
                batch.txns,
            );
        }
        let recovered_txns = index.len() as u64;

        let dstats = DurableStats {
            segments: wal.segment_count(),
            active_segment_bytes: wal.active_len(),
            snapshot_watermark: watermark,
            recovered_txns,
            torn_bytes_truncated: recovery.torn_bytes_truncated,
            corrupt_frames_skipped: recovery.corrupt_frames_skipped,
            ..DurableStats::default()
        };
        Ok(DurableStore {
            dir,
            opts,
            inner: RwLock::new(Inner {
                wal,
                index,
                by_epoch,
                cache,
                quarantined: HashMap::new(),
                snapshot_watermark: watermark,
                batches_since_compact: 0,
                last_compact_error: None,
                dstats,
            }),
            stats: AtomicStats::default(),
            _lock: lock,
        })
    }

    /// The archive directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The options the archive was opened with.
    pub fn options(&self) -> DurableOptions {
        self.opts
    }

    /// Durability counters.
    pub fn durable_stats(&self) -> DurableStats {
        let inner = self.inner.read();
        DurableStats {
            segments: inner.wal.segment_count(),
            active_segment_bytes: inner.wal.active_len(),
            snapshot_watermark: inner.snapshot_watermark,
            quarantined: inner.quarantined.len() as u64,
            ..inner.dstats
        }
    }

    /// Verify every frame in every live archive file (sealed segments,
    /// the active segment, and the current snapshot) against its
    /// checksum, and **quarantine** the transactions of any frame that
    /// fails: their locations leave the index (and cache — a healthy RAM
    /// copy must not mask rotten durable bytes), but the positions stay
    /// listed so paged scans report them [`FetchPage::unavailable`]
    /// rather than silently shrinking history. A mesh node treats those
    /// positions as gossip gaps and re-pulls them from neighbors, healing
    /// them through [`UpdateStore::absorb`].
    pub fn scrub(&self) -> crate::Result<ScrubReport> {
        let _span = orchestra_obs::span!("store.scrub");
        let mut inner = self.inner.write();
        let mut report = ScrubReport::default();

        // Every file the index can point into, with its FileRef.
        let mut files: Vec<FileRef> = Vec::new();
        if let Some(w) = inner.snapshot_watermark {
            files.push(FileRef::Snapshot(w));
        }
        files.extend(
            inner
                .wal
                .sealed_segments()
                .iter()
                .map(|&s| FileRef::Segment(s)),
        );
        files.push(FileRef::Segment(inner.wal.active_seq()));

        // Collect each file's corrupt byte regions. The active segment
        // may legitimately end mid-frame only under relaxed sync policies
        // mid-crash; at scrub time (a live, consistent store) every frame
        // should be complete, so no torn-tail allowance anywhere — an
        // incomplete tail frame simply becomes a corrupt region and its
        // batch is quarantined.
        let mut regions: Vec<(FileRef, segment::CorruptRegion)> = Vec::new();
        for &file in &files {
            let path = self.file_path(file);
            if !path.exists() {
                continue; // an empty active segment may not exist yet
            }
            let scan = segment::scan_segment_lossy(&path, false)?;
            report.files_scanned += 1;
            report.corrupt_frames += scan.corrupt.len();
            regions.extend(scan.corrupt.into_iter().map(|r| (file, r)));
        }
        if regions.is_empty() {
            return Ok(report);
        }

        // Quarantine every indexed transaction whose frame lies in a
        // corrupt region (open-ended regions swallow the whole suffix).
        let hit = |loc: &Location| {
            regions.iter().any(|(file, r)| {
                loc.file == *file
                    && match r.len {
                        Some(len) => loc.offset >= r.offset && loc.offset < r.offset + len,
                        None => loc.offset >= r.offset,
                    }
            })
        };
        let ids: Vec<TxnId> = inner
            .index
            .iter()
            .filter(|(_, loc)| hit(loc))
            .map(|(id, _)| id.clone())
            .collect();
        let id_set: std::collections::HashSet<&TxnId> = ids.iter().collect();
        let mut epochs: HashMap<TxnId, Epoch> = HashMap::new();
        for (&epoch, list) in &inner.by_epoch {
            for id in list {
                if id_set.contains(id) {
                    epochs.insert(id.clone(), epoch);
                }
            }
        }
        for id in ids {
            let epoch = epochs
                .get(&id)
                .copied()
                .expect("indexed ids are listed in by_epoch"); // analyze: allow(panic) -- index and by_epoch are updated in lockstep
            inner.index.remove(&id);
            inner.cache.remove(&id);
            inner.quarantined.insert(id, epoch);
            report.quarantined += 1;
        }
        orchestra_obs::counter!("store.scrub.quarantined", report.quarantined as u64);
        Ok(report)
    }

    /// Force all appended batches to stable storage (a no-op under
    /// [`SyncPolicy::Always`], which syncs in `publish`).
    pub fn sync(&self) -> crate::Result<()> {
        self.inner.write().wal.sync()
    }

    /// The most recent compaction trouble, if any: an auto-compaction
    /// failure (auto-compaction runs inside `publish` but never fails the
    /// publish itself — the batch is already durable), or a post-success
    /// cleanup failure (the compaction itself committed; stragglers are
    /// swept by the next open). Cleared by the next clean compaction.
    pub fn last_compaction_error(&self) -> Option<StoreError> {
        self.inner.read().last_compact_error.clone()
    }

    /// Fold everything sealed so far into a snapshot and delete the
    /// covered segments, bounding the next open's replay to the live
    /// suffix. Returns the new watermark, or `None` when there was
    /// nothing to compact.
    pub fn compact(&self) -> crate::Result<Option<u64>> {
        let mut inner = self.inner.write();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> crate::Result<Option<u64>> {
        let active_empty = inner.wal.active_len() == 0;
        if inner.wal.sealed_segments().is_empty() && active_empty {
            return Ok(None); // nothing new since the last snapshot
        }
        // A fresh attempt supersedes any parked error from earlier
        // attempts (it is re-set below if this one also has trouble).
        inner.last_compact_error = None;
        let covered = if active_empty {
            inner.wal.active_seq() - 1
        } else {
            inner.wal.rotate()?
        };

        // Stream every durable batch in publish order — current snapshot
        // first, then each sealed segment — into the new snapshot file,
        // one batch resident at a time (archives can exceed RAM). Reading
        // from disk (not the cache) keeps compaction identical in both
        // cache modes. Locations are collected and applied to the index
        // only after the new snapshot is durably published.
        let mut writer = snapshot::SnapshotWriter::begin(&self.dir, covered)?;
        let mut repoints: Vec<(TxnId, Location)> = Vec::with_capacity(inner.index.len());
        let copy_batch = |writer: &mut snapshot::SnapshotWriter,
                          repoints: &mut Vec<(TxnId, Location)>,
                          epoch: Epoch,
                          txns: &[Transaction]|
         -> crate::Result<()> {
            let offset = writer.append_batch(epoch, txns)?;
            for (i, t) in txns.iter().enumerate() {
                repoints.push((
                    t.id.clone(),
                    Location {
                        file: FileRef::Snapshot(covered),
                        offset,
                        index: i as u32,
                    },
                ));
            }
            Ok(())
        };
        if let Some(w) = inner.snapshot_watermark {
            snapshot::stream_snapshot(&self.dir, w, |b| {
                copy_batch(&mut writer, &mut repoints, b.epoch, &b.txns)
            })?;
        }
        let mut corrupt_skipped = 0u64;
        for &seq in inner.wal.sealed_segments() {
            let path = self.dir.join(segment::segment_file_name(seq));
            let file = fs::File::open(&path).map_err(|e| segment::io_err("open", &path, &e))?;
            let mut reader = crate::frame::FrameReader::new(std::io::BufReader::new(file), 0);
            loop {
                let (_, outcome) = reader
                    .next_frame()
                    .map_err(|e| segment::io_err("read", &path, &e))?;
                let payload = match outcome {
                    crate::frame::FrameRead::Ok { payload, .. } => payload,
                    crate::frame::FrameRead::Eof => break,
                    // A scrubbed-out (quarantined) or still-undetected
                    // corrupt frame must not wedge compaction: skip it.
                    // Its transactions either sit in quarantine (no
                    // location — unaffected by the repoint) or are healed
                    // copies living in *later* frames.
                    crate::frame::FrameRead::Corrupt {
                        resync: Some(_), ..
                    } => {
                        corrupt_skipped += 1;
                        continue;
                    }
                    // Unframeable suffix: nothing further can be read.
                    _ => {
                        corrupt_skipped += 1;
                        break;
                    }
                };
                let Ok((epoch, txns)) = codec::decode_batch(&payload) else {
                    corrupt_skipped += 1;
                    continue;
                };
                copy_batch(&mut writer, &mut repoints, epoch, &txns)?;
            }
        }
        writer.finish()?;

        // The new snapshot is durable: commit the in-memory state FIRST
        // (re-point the index, advance the watermark) so a failure in the
        // cleanup below cannot leave the watermark behind the data — a
        // later compaction starting from a stale watermark would write a
        // snapshot missing the batches only the new one holds.
        for (id, loc) in repoints {
            inner.index.insert(id, loc);
        }
        let old_watermark = inner.snapshot_watermark.replace(covered);
        inner.batches_since_compact = 0;
        inner.dstats.compactions += 1;
        inner.dstats.corrupt_frames_skipped += corrupt_skipped;

        // Cleanup of now-covered files. The compaction has already
        // succeeded, so a cleanup failure must not be reported as a
        // failed compaction — the state is consistent, the stragglers
        // only cost disk space, and the next open deletes them itself.
        // Park any cleanup error where operators can see it.
        let cleanup = (|| -> crate::Result<()> {
            if let Some(old) = old_watermark {
                if old != covered {
                    let path = self.dir.join(snapshot_file_name(old));
                    fs::remove_file(&path).map_err(|e| segment::io_err("remove", &path, &e))?;
                }
            }
            inner.wal.remove_covered(covered)?;
            segment::sync_dir(&self.dir)
        })();
        if let Err(e) = cleanup {
            inner.last_compact_error = Some(e);
        }
        Ok(Some(covered))
    }

    fn load_txn(&self, inner: &Inner, id: &TxnId) -> crate::Result<Option<Transaction>> {
        if let Some(t) = inner.cache.get(id) {
            return Ok(Some(t.clone()));
        }
        let Some(loc) = inner.index.get(id) else {
            return Ok(None);
        };
        let (_, txns) = read_batch_from(&self.file_path(loc.file), loc.offset)?;
        match txns.into_iter().nth(loc.index as usize) {
            Some(t) => Ok(Some(t)),
            None => Err(StoreError::Corrupt {
                path: self.file_path(loc.file).display().to_string(),
                offset: loc.offset,
                reason: format!("batch shorter than indexed position {}", loc.index),
            }),
        }
    }

    fn file_path(&self, file: FileRef) -> PathBuf {
        match file {
            FileRef::Segment(seq) => self.dir.join(segment::segment_file_name(seq)),
            FileRef::Snapshot(seq) => self.dir.join(snapshot_file_name(seq)),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn index_batch(
    index: &mut HashMap<TxnId, Location>,
    by_epoch: &mut BTreeMap<Epoch, Vec<TxnId>>,
    cache: &mut HashMap<TxnId, Transaction>,
    mode: CacheMode,
    file: FileRef,
    offset: u64,
    epoch: Epoch,
    txns: Vec<Transaction>,
) {
    if txns.is_empty() {
        return;
    }
    let mut ids = Vec::with_capacity(txns.len());
    for (i, t) in txns.into_iter().enumerate() {
        // First indexed location wins. A failed-fsync retry can land the
        // same batch in two on-disk frames; recovery must list the
        // position exactly once or paged scans would apply it twice.
        if index.contains_key(&t.id) {
            continue;
        }
        index.insert(
            t.id.clone(),
            Location {
                file,
                offset,
                index: i as u32,
            },
        );
        ids.push(t.id.clone());
        if mode == CacheMode::Cached {
            cache.insert(t.id.clone(), t);
        }
    }
    index_epoch_ids(by_epoch, epoch, ids);
}

impl UpdateStore for DurableStore {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> crate::Result<()> {
        if txns.is_empty() {
            return Ok(()); // Vacuous: nothing a cursor could miss.
        }
        let _span = orchestra_obs::span!("store.publish", txns = txns.len(), epoch = epoch);
        let mut inner = self.inner.write();
        // Quarantined ids are still *archived* (their position exists);
        // re-publishing one must be rejected like any duplicate — only
        // `absorb` may re-deliver the payload (as a heal).
        check_batch_ids(&txns, |id| {
            inner.index.contains_key(id) || inner.quarantined.contains_key(id)
        })?;
        check_epoch_monotone(epoch, inner.by_epoch.keys().next_back().copied())?;
        let mut stamped = txns;
        for t in &mut stamped {
            t.epoch = epoch;
        }

        // Durability first: the batch is on the log (synced per policy)
        // before any in-memory state changes.
        let (seg, offset) = inner.wal.append_batch(epoch, &stamped)?;

        let Inner {
            index,
            by_epoch,
            cache,
            ..
        } = &mut *inner;
        let n = stamped.len() as u64;
        index_batch(
            index,
            by_epoch,
            cache,
            self.opts.cache,
            FileRef::Segment(seg),
            offset,
            epoch,
            stamped,
        );
        self.stats.add_published(n);
        inner.batches_since_compact += 1;

        if let Some(every) = self.opts.compact_every_batches {
            if inner.batches_since_compact >= every.max(1) {
                // The batch is already durable and indexed, so an
                // auto-compaction failure must not fail this publish — a
                // caller retrying "failed" data would hit DuplicateTxn.
                // Record the error (surfaced via `last_compaction_error`)
                // and retry at the next threshold crossing.
                if let Err(e) = self.compact_locked(&mut inner) {
                    inner.dstats.failed_compactions += 1;
                    inner.last_compact_error = Some(e);
                }
            }
        }
        Ok(())
    }

    fn absorb(&self, txns: Vec<Transaction>) -> crate::Result<AbsorbReport> {
        let _span = orchestra_obs::span!("store.absorb", txns = txns.len());
        let mut inner = self.inner.write();
        let mut report = AbsorbReport::default();
        // Group fresh transactions by the epoch their publisher stamped;
        // each group becomes one WAL batch record — recovery and
        // compaction replay batches by their recorded epoch, so neither
        // cares that gossip merges arrive out of epoch order. Healing
        // re-deliveries for quarantined positions are kept apart: their
        // ids already sit in `by_epoch`, so they must be re-indexed
        // without re-listing the position.
        let mut groups: BTreeMap<Epoch, Vec<Transaction>> = BTreeMap::new();
        let mut heals: BTreeMap<Epoch, Vec<Transaction>> = BTreeMap::new();
        let mut incoming: std::collections::BTreeSet<TxnId> = std::collections::BTreeSet::new();
        for t in txns {
            if inner.index.contains_key(&t.id) || !incoming.insert(t.id.clone()) {
                report.duplicates += 1;
                continue;
            }
            if let Some(&epoch) = inner.quarantined.get(&t.id) {
                if t.epoch == epoch {
                    report.healed += 1;
                    heals.entry(epoch).or_default().push(t);
                } else {
                    // Same id, different epoch: not the transaction the
                    // archive listed. Refuse the splice.
                    report.duplicates += 1;
                }
                continue;
            }
            report.absorbed += 1;
            groups.entry(t.epoch).or_default().push(t);
        }
        for (epoch, batch) in groups {
            // Durability first, exactly like `publish`.
            let (seg, offset) = inner.wal.append_batch(epoch, &batch)?;
            let Inner {
                index,
                by_epoch,
                cache,
                ..
            } = &mut *inner;
            index_batch(
                index,
                by_epoch,
                cache,
                self.opts.cache,
                FileRef::Segment(seg),
                offset,
                epoch,
                batch,
            );
            inner.batches_since_compact += 1;
        }
        for (epoch, batch) in heals {
            // The healthy copy is appended like fresh history (the old
            // corrupt frame stays where it is and is dropped by the next
            // compaction), but the position is NOT re-listed in
            // `by_epoch` — it never left. Zero duplicate applies: a
            // cursor that already passed the position saw it as
            // unavailable, and rewinding consumers skip already-applied
            // ids by id.
            let (seg, offset) = inner.wal.append_batch(epoch, &batch)?;
            for (i, t) in batch.into_iter().enumerate() {
                inner.quarantined.remove(&t.id);
                inner.index.insert(
                    t.id.clone(),
                    Location {
                        file: FileRef::Segment(seg),
                        offset,
                        index: i as u32,
                    },
                );
                if self.opts.cache == CacheMode::Cached {
                    inner.cache.insert(t.id.clone(), t);
                }
            }
            inner.batches_since_compact += 1;
        }
        inner.dstats.healed += report.healed;
        self.stats.add_published(report.absorbed);
        Ok(report)
    }

    fn quarantined(&self) -> Vec<(Epoch, TxnId)> {
        let inner = self.inner.read();
        let mut out: Vec<(Epoch, TxnId)> = inner
            .quarantined
            .iter()
            .map(|(id, &e)| (e, id.clone()))
            .collect();
        out.sort();
        out
    }

    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> crate::Result<FetchPage> {
        // Read lock only: concurrent reconciles page the archive in
        // parallel; the epoch index locates each batch frame without
        // decoding anything outside this page.
        let inner = self.inner.read();
        let (positions, next_cursor) = collect_page(&inner.by_epoch, cursor, limit);
        // Group disk reads per batch frame so a cold page decodes each
        // frame once, not once per transaction.
        let mut frame_cache: HashMap<(FileRef, u64), Vec<Transaction>> = HashMap::new();
        let mut txns = Vec::with_capacity(positions.len());
        let mut unavailable = Vec::new();
        for (epoch, id) in &positions {
            if let Some(t) = inner.cache.get(id) {
                txns.push(t.clone());
                continue;
            }
            if inner.quarantined.contains_key(id) {
                // The position is archived but its frame was scrubbed out
                // as corrupt: report it like a dead replica so partial
                // progress (frozen cursors) degrades gracefully instead
                // of the page erroring.
                unavailable.push((*epoch, id.clone()));
                continue;
            }
            // analyze: allow(panic) -- index and by_epoch are updated in lockstep
            let loc = *inner.index.get(id).expect("by_epoch ids are indexed");
            let key = (loc.file, loc.offset);
            if let std::collections::hash_map::Entry::Vacant(e) = frame_cache.entry(key) {
                let (_, batch) = read_batch_from(&self.file_path(loc.file), loc.offset)?;
                e.insert(batch);
            }
            let batch = &frame_cache[&key]; // analyze: allow(panic) -- entry for key inserted just above when vacant
            let t = batch
                .get(loc.index as usize)
                .ok_or_else(|| StoreError::Corrupt {
                    path: self.file_path(loc.file).display().to_string(),
                    offset: loc.offset,
                    reason: format!("batch shorter than indexed position {}", loc.index),
                })?;
            txns.push(t.clone());
        }
        self.stats.add_fetched(txns.len() as u64);
        self.stats.add_unavailable(unavailable.len() as u64);
        self.stats.add_pages(1);
        Ok(FetchPage {
            txns,
            unavailable,
            next_cursor,
        })
    }

    fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>> {
        let inner = self.inner.read();
        if inner.quarantined.contains_key(id) {
            self.stats.add_misses(1);
            return Err(StoreError::Unavailable {
                txn: id.to_string(),
            });
        }
        let got = self.load_txn(&inner, id)?;
        if got.is_some() {
            self.stats.add_fetched(1);
        }
        Ok(got)
    }

    fn len(&self) -> usize {
        // Quarantined positions are still archived (their ids are
        // listed); only their payloads are awaiting repair.
        let inner = self.inner.read();
        inner.index.len() + inner.quarantined.len()
    }

    fn latest_epoch(&self) -> Option<Epoch> {
        self.inner.read().by_epoch.keys().next_back().copied()
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }
}

/// Take an exclusive advisory lock on `<dir>/LOCK` for the store's
/// lifetime. On Unix this is `flock(2)` (released automatically when the
/// file closes, including on crash); elsewhere it degrades to creating
/// the file without exclusion.
fn lock_dir(dir: &Path) -> crate::Result<fs::File> {
    let path = dir.join("LOCK");
    let file = fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| segment::io_err("open lock file", &path, &e))?;
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        // Declared directly (libc is always linked) to keep the workspace
        // dependency-free.
        extern "C" {
            fn flock(fd: std::ffi::c_int, operation: std::ffi::c_int) -> std::ffi::c_int;
        }
        const LOCK_EX: std::ffi::c_int = 2;
        const LOCK_NB: std::ffi::c_int = 4;
        // SAFETY: `flock(2)` only reads the descriptor, which `file`
        // keeps open for the duration of the call; the declared
        // signature matches the libc prototype on every unix target.
        if unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) } != 0 {
            return Err(StoreError::Io {
                op: "lock".into(),
                path: path.display().to_string(),
                message: "archive is already open in another store or process \
                          (two writers would corrupt the WAL)"
                    .into(),
            });
        }
    }
    Ok(file)
}

fn remove_stale_tmp_files(dir: &Path) -> crate::Result<()> {
    let entries = fs::read_dir(dir).map_err(|e| segment::io_err("read_dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| segment::io_err("read_dir", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.') && name.ends_with(".tmp") {
            let path = entry.path();
            fs::remove_file(&path).map_err(|e| segment::io_err("remove", &path, &e))?;
        }
    }
    Ok(())
}
