//! The durable archive's binary codec: varint/zigzag primitives, a
//! hand-rolled CRC32 (IEEE 802.3, reflected), and length-prefixed,
//! checksummed frames around [`Transaction`] batch records.
//!
//! Wire formats are deliberately dependency-free and stable:
//!
//! ```text
//! frame   := len:u32le crc:u32le payload[len]     (crc over payload)
//! payload := RECORD_BATCH epoch:uvarint count:uvarint txn*
//! txn     := peer:str seq:uvarint epoch:uvarint
//!            n_updates:uvarint update* n_ants:uvarint txn_id*
//! update  := 0 rel:str tuple            (insert)
//!          | 1 rel:str tuple            (delete)
//!          | 2 rel:str tuple tuple      (modify: old, new)
//! tuple   := arity:uvarint value*
//! value   := 0 | 1 b:u8 | 2 i:ivarint | 3 bits:u64le
//!          | 4 s:str | 5 f:str argc:uvarint value*
//! str     := len:uvarint utf8-bytes
//! ```

use orchestra_relational::{Tuple, Value};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::collections::BTreeSet;
use std::fmt;

/// Frame header size: u32 length + u32 checksum.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one frame's payload. A corrupt length prefix must not
/// drive a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// Record tag for a published transaction batch.
pub const RECORD_BATCH: u8 = 0x01;

/// A decoding failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Offset into the buffer being decoded.
    pub offset: usize,
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize];
    }
    !c
}

// ------------------------------------------------------------ primitives

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    // zigzag: sign goes to bit 0 so small magnitudes stay short.
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked read cursor.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn fail<T>(&self, reason: impl Into<String>) -> Result<T> {
        Err(CodecError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.fail(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn uvarint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return self.fail("uvarint overflows u64");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return self.fail("uvarint longer than 10 bytes");
            }
        }
    }

    fn ivarint(&mut self) -> Result<i64> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn str(&mut self) -> Result<&'a str> {
        let len = self.uvarint()?;
        if len > self.buf.len() as u64 {
            return self.fail(format!("string length {len} exceeds buffer"));
        }
        let bytes = self.take(len as usize)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(e) => self.fail(format!("invalid utf8 in string: {e}")),
        }
    }
}

// ---------------------------------------------------------------- values

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            put_ivarint(out, *i);
        }
        Value::Double(d) => {
            out.push(3);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Skolem(sk) => {
            out.push(5);
            put_str(out, &sk.function);
            put_uvarint(out, sk.args.len() as u64);
            for a in &sk.args {
                put_value(out, a);
            }
        }
    }
}

/// Skolem nesting deeper than this decodes as corruption rather than
/// recursing toward a stack overflow: a CRC-valid but pathological frame
/// must surface as an error, not abort the process. Real labeled nulls
/// nest a handful of levels (one per chained tgd).
const MAX_VALUE_DEPTH: u32 = 64;

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    get_value_at(c, 0)
}

fn get_value_at(c: &mut Cursor<'_>, depth: u32) -> Result<Value> {
    if depth > MAX_VALUE_DEPTH {
        return c.fail(format!("value nesting exceeds {MAX_VALUE_DEPTH} levels"));
    }
    match c.u8()? {
        0 => Ok(Value::Null),
        1 => match c.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => c.fail(format!("invalid bool byte {other}")),
        },
        2 => Ok(Value::Int(c.ivarint()?)),
        3 => {
            let bits = u64::from_le_bytes(c.take(8)?.try_into().expect("8 bytes"));
            Ok(Value::Double(f64::from_bits(bits)))
        }
        4 => Ok(Value::str(c.str()?)),
        5 => {
            let function = c.str()?.to_owned();
            let argc = c.uvarint()? as usize;
            let mut args = Vec::with_capacity(argc.min(1024));
            for _ in 0..argc {
                args.push(get_value_at(c, depth + 1)?);
            }
            Ok(Value::skolem(function, args))
        }
        other => c.fail(format!("unknown value tag {other}")),
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_uvarint(out, t.arity() as u64);
    for v in t.iter() {
        put_value(out, v);
    }
}

fn get_tuple(c: &mut Cursor<'_>) -> Result<Tuple> {
    let arity = c.uvarint()? as usize;
    let mut vals = Vec::with_capacity(arity.min(1024));
    for _ in 0..arity {
        vals.push(get_value(c)?);
    }
    Ok(Tuple::new(vals))
}

// --------------------------------------------------------------- updates

fn put_update(out: &mut Vec<u8>, u: &Update) {
    match u {
        Update::Insert { relation, tuple } => {
            out.push(0);
            put_str(out, relation);
            put_tuple(out, tuple);
        }
        Update::Delete { relation, tuple } => {
            out.push(1);
            put_str(out, relation);
            put_tuple(out, tuple);
        }
        Update::Modify { relation, old, new } => {
            out.push(2);
            put_str(out, relation);
            put_tuple(out, old);
            put_tuple(out, new);
        }
    }
}

fn get_update(c: &mut Cursor<'_>) -> Result<Update> {
    match c.u8()? {
        0 => {
            let rel = c.str()?.to_owned();
            Ok(Update::insert(rel, get_tuple(c)?))
        }
        1 => {
            let rel = c.str()?.to_owned();
            Ok(Update::delete(rel, get_tuple(c)?))
        }
        2 => {
            let rel = c.str()?.to_owned();
            let old = get_tuple(c)?;
            let new = get_tuple(c)?;
            Ok(Update::modify(rel, old, new))
        }
        other => c.fail(format!("unknown update tag {other}")),
    }
}

// ---------------------------------------------------------- transactions

fn put_txn_id(out: &mut Vec<u8>, id: &TxnId) {
    put_str(out, id.peer.name());
    put_uvarint(out, id.seq);
}

fn get_txn_id(c: &mut Cursor<'_>) -> Result<TxnId> {
    let peer = c.str()?.to_owned();
    let seq = c.uvarint()?;
    Ok(TxnId::new(PeerId::new(peer), seq))
}

/// Encode one transaction (appended to `out`).
pub fn put_transaction(out: &mut Vec<u8>, t: &Transaction) {
    put_txn_id(out, &t.id);
    put_uvarint(out, t.epoch.value());
    put_uvarint(out, t.updates.len() as u64);
    for u in &t.updates {
        put_update(out, u);
    }
    put_uvarint(out, t.antecedents.len() as u64);
    for a in &t.antecedents {
        put_txn_id(out, a);
    }
}

/// Decode one transaction.
pub fn get_transaction(c: &mut Cursor<'_>) -> Result<Transaction> {
    let id = get_txn_id(c)?;
    let epoch = Epoch::new(c.uvarint()?);
    let n_updates = c.uvarint()? as usize;
    let mut updates = Vec::with_capacity(n_updates.min(4096));
    for _ in 0..n_updates {
        updates.push(get_update(c)?);
    }
    let n_ants = c.uvarint()? as usize;
    let mut antecedents = BTreeSet::new();
    for _ in 0..n_ants {
        antecedents.insert(get_txn_id(c)?);
    }
    Ok(Transaction::new(id, epoch, updates).with_antecedents(antecedents))
}

// ----------------------------------------------------------- batch record

/// Encode a publish batch record (the only WAL record type today).
pub fn encode_batch(epoch: Epoch, txns: &[Transaction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * txns.len() + 16);
    out.push(RECORD_BATCH);
    put_uvarint(&mut out, epoch.value());
    put_uvarint(&mut out, txns.len() as u64);
    for t in txns {
        put_transaction(&mut out, t);
    }
    out
}

/// Decode a publish batch record; the payload must be consumed exactly.
pub fn decode_batch(payload: &[u8]) -> Result<(Epoch, Vec<Transaction>)> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    if tag != RECORD_BATCH {
        return c.fail(format!("unknown record tag {tag}"));
    }
    let epoch = Epoch::new(c.uvarint()?);
    let count = c.uvarint()? as usize;
    let mut txns = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        txns.push(get_transaction(&mut c)?);
    }
    if !c.is_empty() {
        return c.fail("trailing bytes after batch record");
    }
    Ok((epoch, txns))
}

// ----------------------------------------------------------------- frame

/// Wrap a payload in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= u64::from(MAX_FRAME_LEN),
        "oversized frame"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The outcome of reading one frame from a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, checksum-valid frame payload of the given total
    /// on-disk size (header + payload).
    Ok {
        /// The verified payload bytes.
        payload: Vec<u8>,
        /// Total bytes consumed from the stream.
        size: usize,
    },
    /// The stream ends exactly here — a clean end.
    Eof,
    /// The stream ends mid-frame (short header or short payload): the
    /// torn-tail signature of a crash during append.
    Torn,
    /// A complete frame whose checksum (or length prefix) is invalid.
    Corrupt {
        /// Why the frame was rejected.
        reason: String,
    },
}

/// Read the frame starting at `buf[offset..]` — a thin adapter over
/// [`FrameReader`] so there is exactly one frame parser (the streaming
/// one every production path uses).
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    let rest = &buf[offset.min(buf.len())..];
    match FrameReader::new(rest, 0).next_frame() {
        Ok((_, outcome)) => outcome,
        Err(e) => FrameRead::Corrupt {
            reason: format!("read error from in-memory buffer: {e}"),
        },
    }
}

/// Streaming frame iteration over any [`Read`](std::io::Read) source,
/// holding one frame in memory at a time. This is what keeps recovery and
/// compaction memory bounded by the largest *frame*, not the file.
pub struct FrameReader<R> {
    inner: R,
    offset: u64,
}

impl<R: std::io::Read> FrameReader<R> {
    /// Wrap a reader positioned at a frame boundary (`base_offset` is that
    /// position's byte offset within the file, for error reporting).
    pub fn new(inner: R, base_offset: u64) -> Self {
        FrameReader {
            inner,
            offset: base_offset,
        }
    }

    /// Byte offset of the next frame header.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read the next frame. Returns the frame's starting offset alongside
    /// the outcome; I/O errors other than clean EOF surface as `Err`.
    pub fn next_frame(&mut self) -> std::io::Result<(u64, FrameRead)> {
        let start = self.offset;
        let mut header = [0u8; FRAME_HEADER];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            0 => return Ok((start, FrameRead::Eof)),
            n if n < FRAME_HEADER => return Ok((start, FrameRead::Torn)),
            _ => {}
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Ok((
                start,
                FrameRead::Corrupt {
                    reason: format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
                },
            ));
        }
        let mut payload = vec![0u8; len as usize];
        let got = read_exact_or_eof(&mut self.inner, &mut payload)?;
        if got < payload.len() {
            return Ok((start, FrameRead::Torn));
        }
        let actual = crc32(&payload);
        if actual != crc {
            return Ok((
                start,
                FrameRead::Corrupt {
                    reason: format!(
                        "checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"
                    ),
                },
            ));
        }
        self.offset = start + (FRAME_HEADER + payload.len()) as u64;
        Ok((
            start,
            FrameRead::Ok {
                size: FRAME_HEADER + payload.len(),
                payload,
            },
        ))
    }
}

/// Fill `buf` as far as the stream allows; returns bytes read (< len only
/// at end of stream).
fn read_exact_or_eof<R: std::io::Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;

    fn sample_txn() -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new("Alaska"), 7),
            Epoch::new(3),
            vec![
                Update::insert("R", tuple![1, "a"]),
                Update::modify("R", tuple![1, "a"], tuple![1, "b"]),
                Update::delete("S", tuple![2.5, false]),
            ],
        )
        .with_antecedents([
            TxnId::new(PeerId::new("Beijing"), 1),
            TxnId::new(PeerId::new("Crete"), 9),
        ])
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).uvarint().unwrap(), v);
        }
        for v in [0i64, -1, 1, 63, -64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).ivarint().unwrap(), v);
        }
    }

    #[test]
    fn transaction_roundtrip() {
        let t = sample_txn();
        let mut buf = Vec::new();
        put_transaction(&mut buf, &t);
        let mut c = Cursor::new(&buf);
        assert_eq!(get_transaction(&mut c).unwrap(), t);
        assert!(c.is_empty());
    }

    #[test]
    fn skolem_and_specials_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Double(f64::INFINITY),
            Value::skolem("f", vec![Value::skolem("g", vec![Value::Int(-5)])]),
            Value::str(""),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for v in &vals {
            assert_eq!(&get_value(&mut c).unwrap(), v);
        }
    }

    #[test]
    fn batch_roundtrip() {
        let txns = vec![sample_txn()];
        let payload = encode_batch(Epoch::new(3), &txns);
        let (ep, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(ep, Epoch::new(3));
        assert_eq!(decoded, txns);
    }

    #[test]
    fn frame_roundtrip_and_torn_detection() {
        let payload = encode_batch(Epoch::new(1), &[sample_txn()]);
        let framed = frame(&payload);
        match read_frame(&framed, 0) {
            FrameRead::Ok { payload: p, size } => {
                assert_eq!(p, payload);
                assert_eq!(size, framed.len());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&framed, framed.len()), FrameRead::Eof);
        // Every strict prefix is torn, never corrupt or ok.
        for cut in 1..framed.len() {
            assert_eq!(
                read_frame(&framed[..cut], 0),
                FrameRead::Torn,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn frame_flips_are_corrupt() {
        let framed = frame(&encode_batch(Epoch::new(1), &[sample_txn()]));
        // Flip each payload byte: checksum must catch it.
        for i in FRAME_HEADER..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }),
                "flipped byte {i}"
            );
        }
        // A corrupted stored-crc is also caught.
        let mut bad = framed.clone();
        bad[5] ^= 0x01;
        assert!(matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }));
        // An absurd length prefix is rejected before allocating.
        let mut bad = framed;
        bad[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }));
    }

    #[test]
    fn frame_reader_streams_and_classifies() {
        let a = frame(b"first");
        let b = frame(b"second");
        let mut bytes = a.clone();
        bytes.extend_from_slice(&b);
        let mut r = FrameReader::new(&bytes[..], 0);
        match r.next_frame().unwrap() {
            (0, FrameRead::Ok { payload, .. }) => assert_eq!(payload, b"first"),
            other => panic!("{other:?}"),
        }
        match r.next_frame().unwrap() {
            (off, FrameRead::Ok { payload, .. }) => {
                assert_eq!(off, a.len() as u64);
                assert_eq!(payload, b"second");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(r.next_frame().unwrap(), (_, FrameRead::Eof)));
        // Torn: stream cut mid-payload.
        let cut = &bytes[..a.len() + 9];
        let mut r = FrameReader::new(cut, 0);
        assert!(matches!(r.next_frame().unwrap(), (0, FrameRead::Ok { .. })));
        assert!(matches!(r.next_frame().unwrap(), (_, FrameRead::Torn)));
        // Corrupt: flipped byte.
        let mut bad = frame(b"x");
        bad[8] ^= 1;
        let mut r = FrameReader::new(&bad[..], 0);
        assert!(matches!(
            r.next_frame().unwrap(),
            (0, FrameRead::Corrupt { .. })
        ));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_batch(&[]).is_err());
        assert!(decode_batch(&[0xff]).is_err(), "unknown tag");
        let mut payload = encode_batch(Epoch::new(1), &[sample_txn()]);
        payload.push(0);
        assert!(decode_batch(&payload).is_err(), "trailing bytes");
    }

    #[test]
    fn pathological_skolem_nesting_is_an_error_not_a_crash() {
        // A CRC-valid frame can still hold adversarial bytes: a run of
        // nested Skolem headers must decode to an error, not recurse to
        // a stack overflow.
        let mut payload = Vec::new();
        for _ in 0..100_000u32 {
            payload.push(5); // Skolem tag
            payload.push(1); // function name length 1
            payload.push(b'f');
            payload.push(1); // one argument
        }
        let mut c = Cursor::new(&payload);
        let err = get_value(&mut c).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
        // Legitimate nesting well inside the cap still decodes.
        let mut deep = Value::Int(1);
        for _ in 0..(MAX_VALUE_DEPTH / 2) {
            deep = Value::skolem("f", vec![deep]);
        }
        let mut buf = Vec::new();
        put_value(&mut buf, &deep);
        assert_eq!(get_value(&mut Cursor::new(&buf)).unwrap(), deep);
    }
}
