//! The shared binary codec: varint/zigzag primitives and the record
//! encodings for [`Transaction`] batches and [`FetchCursor`]s. Both the
//! durable archive's on-disk files and the `orchestra-net` wire protocol
//! serialize through these functions, so a transaction's bytes are
//! identical whether they land in a WAL frame or a network frame. The
//! checksummed length-prefixed framing itself lives in
//! [`crate::frame`] (re-exported here for compatibility).
//!
//! Wire formats are deliberately dependency-free and stable:
//!
//! ```text
//! frame   := len:u32le crc:u32le payload[len]     (crc over payload)
//! payload := RECORD_BATCH epoch:uvarint count:uvarint txn*
//! txn     := peer:str seq:uvarint epoch:uvarint
//!            n_updates:uvarint update* n_ants:uvarint txn_id*
//! update  := 0 rel:str tuple            (insert)
//!          | 1 rel:str tuple            (delete)
//!          | 2 rel:str tuple tuple      (modify: old, new)
//! tuple   := arity:uvarint value*
//! value   := 0 | 1 b:u8 | 2 i:ivarint | 3 bits:u64le
//!          | 4 s:str | 5 f:str argc:uvarint value*
//! cursor  := epoch:uvarint 0            (start of epoch)
//!          | epoch:uvarint 1 txn_id     (at txn, inclusive)
//!          | epoch:uvarint 2 txn_id     (strictly after txn)
//! str     := len:uvarint utf8-bytes
//! ```

use crate::api::{CursorBound, FetchCursor};
use orchestra_relational::{Tuple, Value};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::collections::BTreeSet;
use std::fmt;

pub use crate::frame::{
    crc32, frame, read_frame, FrameRead, FrameReader, FRAME_HEADER, MAX_FRAME_LEN,
};

/// Record tag for a published transaction batch.
pub const RECORD_BATCH: u8 = 0x01;

/// A decoding failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Offset into the buffer being decoded.
    pub offset: usize,
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ------------------------------------------------------------ primitives

/// Append an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Append a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    // zigzag: sign goes to bit 0 so small magnitudes stay short.
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked read cursor.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Every byte not yet consumed, consuming them all — for bodies whose
    /// tail is delegated to another decoder (e.g. a wire message wrapping
    /// a batch record).
    pub fn remaining(&mut self) -> &'a [u8] {
        // analyze: allow(panic) -- pos never exceeds buf.len(): take() bounds-checks every advance
        let rest = &self.buf[self.pos..];
        self.pos = self.buf.len();
        rest
    }

    fn fail<T>(&self, reason: impl Into<String>) -> Result<T> {
        Err(CodecError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.fail(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            ));
        }
        // analyze: allow(panic) -- the length check directly above returns Err before this slice can overrun
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read an unsigned LEB128 varint.
    pub fn uvarint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return self.fail("uvarint overflows u64");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return self.fail("uvarint longer than 10 bytes");
            }
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn ivarint(&mut self) -> Result<i64> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        let len = self.uvarint()?;
        if len > self.buf.len() as u64 {
            return self.fail(format!("string length {len} exceeds buffer"));
        }
        let bytes = self.take(len as usize)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(e) => self.fail(format!("invalid utf8 in string: {e}")),
        }
    }
}

// ---------------------------------------------------------------- values

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            put_ivarint(out, *i);
        }
        Value::Double(d) => {
            out.push(3);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Skolem(sk) => {
            out.push(5);
            put_str(out, &sk.function);
            put_uvarint(out, sk.args.len() as u64);
            for a in &sk.args {
                put_value(out, a);
            }
        }
    }
}

/// Skolem nesting deeper than this decodes as corruption rather than
/// recursing toward a stack overflow: a CRC-valid but pathological frame
/// must surface as an error, not abort the process. Real labeled nulls
/// nest a handful of levels (one per chained tgd).
const MAX_VALUE_DEPTH: u32 = 64;

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    get_value_at(c, 0)
}

fn get_value_at(c: &mut Cursor<'_>, depth: u32) -> Result<Value> {
    if depth > MAX_VALUE_DEPTH {
        return c.fail(format!("value nesting exceeds {MAX_VALUE_DEPTH} levels"));
    }
    match c.u8()? {
        0 => Ok(Value::Null),
        1 => match c.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => c.fail(format!("invalid bool byte {other}")),
        },
        2 => Ok(Value::Int(c.ivarint()?)),
        3 => {
            // analyze: allow(panic) -- take(8) returned exactly 8 bytes; try_into is infallible here
            let bits = u64::from_le_bytes(c.take(8)?.try_into().expect("8 bytes"));
            Ok(Value::Double(f64::from_bits(bits)))
        }
        4 => Ok(Value::str(c.str()?)),
        5 => {
            let function = c.str()?.to_owned();
            let argc = c.uvarint()? as usize;
            let mut args = Vec::with_capacity(argc.min(1024));
            for _ in 0..argc {
                args.push(get_value_at(c, depth + 1)?);
            }
            Ok(Value::skolem(function, args))
        }
        other => c.fail(format!("unknown value tag {other}")),
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_uvarint(out, t.arity() as u64);
    for v in t.iter() {
        put_value(out, v);
    }
}

fn get_tuple(c: &mut Cursor<'_>) -> Result<Tuple> {
    let arity = c.uvarint()? as usize;
    let mut vals = Vec::with_capacity(arity.min(1024));
    for _ in 0..arity {
        vals.push(get_value(c)?);
    }
    Ok(Tuple::new(vals))
}

// --------------------------------------------------------------- updates

fn put_update(out: &mut Vec<u8>, u: &Update) {
    match u {
        Update::Insert { relation, tuple } => {
            out.push(0);
            put_str(out, relation);
            put_tuple(out, tuple);
        }
        Update::Delete { relation, tuple } => {
            out.push(1);
            put_str(out, relation);
            put_tuple(out, tuple);
        }
        Update::Modify { relation, old, new } => {
            out.push(2);
            put_str(out, relation);
            put_tuple(out, old);
            put_tuple(out, new);
        }
    }
}

fn get_update(c: &mut Cursor<'_>) -> Result<Update> {
    match c.u8()? {
        0 => {
            let rel = c.str()?.to_owned();
            Ok(Update::insert(rel, get_tuple(c)?))
        }
        1 => {
            let rel = c.str()?.to_owned();
            Ok(Update::delete(rel, get_tuple(c)?))
        }
        2 => {
            let rel = c.str()?.to_owned();
            let old = get_tuple(c)?;
            let new = get_tuple(c)?;
            Ok(Update::modify(rel, old, new))
        }
        other => c.fail(format!("unknown update tag {other}")),
    }
}

// ---------------------------------------------------------- transactions

/// Encode one transaction id (appended to `out`).
pub fn put_txn_id(out: &mut Vec<u8>, id: &TxnId) {
    put_str(out, id.peer.name());
    put_uvarint(out, id.seq);
}

/// Decode one transaction id.
pub fn get_txn_id(c: &mut Cursor<'_>) -> Result<TxnId> {
    let peer = c.str()?.to_owned();
    let seq = c.uvarint()?;
    Ok(TxnId::new(PeerId::new(peer), seq))
}

/// Encode one transaction (appended to `out`).
pub fn put_transaction(out: &mut Vec<u8>, t: &Transaction) {
    put_txn_id(out, &t.id);
    put_uvarint(out, t.epoch.value());
    put_uvarint(out, t.updates.len() as u64);
    for u in &t.updates {
        put_update(out, u);
    }
    put_uvarint(out, t.antecedents.len() as u64);
    for a in &t.antecedents {
        put_txn_id(out, a);
    }
}

/// Decode one transaction.
pub fn get_transaction(c: &mut Cursor<'_>) -> Result<Transaction> {
    let id = get_txn_id(c)?;
    let epoch = Epoch::new(c.uvarint()?);
    let n_updates = c.uvarint()? as usize;
    let mut updates = Vec::with_capacity(n_updates.min(4096));
    for _ in 0..n_updates {
        updates.push(get_update(c)?);
    }
    let n_ants = c.uvarint()? as usize;
    let mut antecedents = BTreeSet::new();
    for _ in 0..n_ants {
        antecedents.insert(get_txn_id(c)?);
    }
    Ok(Transaction::new(id, epoch, updates).with_antecedents(antecedents))
}

// --------------------------------------------------------------- cursors

/// Encode a [`FetchCursor`] (appended to `out`): the archive position a
/// paged exchange resumes from, stable across processes and the wire.
pub fn put_cursor(out: &mut Vec<u8>, cursor: &FetchCursor) {
    put_uvarint(out, cursor.epoch().value());
    match cursor.bound() {
        CursorBound::Start => out.push(0),
        CursorBound::At(id) => {
            out.push(1);
            put_txn_id(out, id);
        }
        CursorBound::After(id) => {
            out.push(2);
            put_txn_id(out, id);
        }
    }
}

/// Decode a [`FetchCursor`].
pub fn get_cursor(c: &mut Cursor<'_>) -> Result<FetchCursor> {
    let epoch = Epoch::new(c.uvarint()?);
    let bound = match c.u8()? {
        0 => CursorBound::Start,
        1 => CursorBound::At(get_txn_id(c)?),
        2 => CursorBound::After(get_txn_id(c)?),
        other => return c.fail(format!("unknown cursor bound tag {other}")),
    };
    Ok(FetchCursor::from_parts(epoch, bound))
}

// ----------------------------------------------------------- batch record

/// Encode a publish batch record (the only WAL record type today).
pub fn encode_batch(epoch: Epoch, txns: &[Transaction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * txns.len() + 16);
    out.push(RECORD_BATCH);
    put_uvarint(&mut out, epoch.value());
    put_uvarint(&mut out, txns.len() as u64);
    for t in txns {
        put_transaction(&mut out, t);
    }
    out
}

/// Decode a publish batch record; the payload must be consumed exactly.
pub fn decode_batch(payload: &[u8]) -> Result<(Epoch, Vec<Transaction>)> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    if tag != RECORD_BATCH {
        return c.fail(format!("unknown record tag {tag}"));
    }
    let epoch = Epoch::new(c.uvarint()?);
    let count = c.uvarint()? as usize;
    let mut txns = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        txns.push(get_transaction(&mut c)?);
    }
    if !c.is_empty() {
        return c.fail("trailing bytes after batch record");
    }
    Ok((epoch, txns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;

    fn sample_txn() -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new("Alaska"), 7),
            Epoch::new(3),
            vec![
                Update::insert("R", tuple![1, "a"]),
                Update::modify("R", tuple![1, "a"], tuple![1, "b"]),
                Update::delete("S", tuple![2.5, false]),
            ],
        )
        .with_antecedents([
            TxnId::new(PeerId::new("Beijing"), 1),
            TxnId::new(PeerId::new("Crete"), 9),
        ])
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).uvarint().unwrap(), v);
        }
        for v in [0i64, -1, 1, 63, -64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).ivarint().unwrap(), v);
        }
    }

    #[test]
    fn transaction_roundtrip() {
        let t = sample_txn();
        let mut buf = Vec::new();
        put_transaction(&mut buf, &t);
        let mut c = Cursor::new(&buf);
        assert_eq!(get_transaction(&mut c).unwrap(), t);
        assert!(c.is_empty());
    }

    #[test]
    fn skolem_and_specials_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Double(f64::INFINITY),
            Value::skolem("f", vec![Value::skolem("g", vec![Value::Int(-5)])]),
            Value::str(""),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for v in &vals {
            assert_eq!(&get_value(&mut c).unwrap(), v);
        }
    }

    #[test]
    fn batch_roundtrip() {
        let txns = vec![sample_txn()];
        let payload = encode_batch(Epoch::new(3), &txns);
        let (ep, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(ep, Epoch::new(3));
        assert_eq!(decoded, txns);
    }

    #[test]
    fn cursor_roundtrip() {
        let id = TxnId::new(PeerId::new("Alaska"), 7);
        for cursor in [
            FetchCursor::at_epoch(Epoch::zero()),
            FetchCursor::at_epoch(Epoch::new(42)),
            FetchCursor::at_txn(Epoch::new(3), id.clone()),
            FetchCursor::after_txn(Epoch::new(3), id),
        ] {
            let mut buf = Vec::new();
            put_cursor(&mut buf, &cursor);
            let mut c = Cursor::new(&buf);
            assert_eq!(get_cursor(&mut c).unwrap(), cursor);
            assert!(c.is_empty());
        }
        // An unknown bound tag is an error, not a panic.
        let mut bad = Vec::new();
        put_uvarint(&mut bad, 1);
        bad.push(9);
        assert!(get_cursor(&mut Cursor::new(&bad)).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_batch(&[]).is_err());
        assert!(decode_batch(&[0xff]).is_err(), "unknown tag");
        let mut payload = encode_batch(Epoch::new(1), &[sample_txn()]);
        payload.push(0);
        assert!(decode_batch(&payload).is_err(), "trailing bytes");
    }

    #[test]
    fn pathological_skolem_nesting_is_an_error_not_a_crash() {
        // A CRC-valid frame can still hold adversarial bytes: a run of
        // nested Skolem headers must decode to an error, not recurse to
        // a stack overflow.
        let mut payload = Vec::new();
        for _ in 0..100_000u32 {
            payload.push(5); // Skolem tag
            payload.push(1); // function name length 1
            payload.push(b'f');
            payload.push(1); // one argument
        }
        let mut c = Cursor::new(&payload);
        let err = get_value(&mut c).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
        // Legitimate nesting well inside the cap still decodes.
        let mut deep = Value::Int(1);
        for _ in 0..(MAX_VALUE_DEPTH / 2) {
            deep = Value::skolem("f", vec![deep]);
        }
        let mut buf = Vec::new();
        put_value(&mut buf, &deep);
        assert_eq!(get_value(&mut Cursor::new(&buf)).unwrap(), deep);
    }
}
