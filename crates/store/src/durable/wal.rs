//! The write-ahead log: an append-only chain of segment files with a
//! configurable durability/rotation policy.
//!
//! One publish batch = one checksummed frame (see `codec`), so batch
//! atomicity falls out of frame atomicity: a crash mid-append leaves a
//! torn final frame, recovery truncates it, and the archive reopens with
//! exactly the durable prefix of whole batches.

use super::codec::{decode_batch, encode_batch};
use super::segment::{
    list_segments, scan_segment_lossy, segment_file_name, truncate_segment, ActiveSegment,
};
use crate::api::StoreError;
use crate::frame::{frame, FrameRead, FrameReader, MAX_FRAME_LEN};
use orchestra_updates::{Epoch, Transaction};
use std::fs;
use std::path::{Path, PathBuf};

/// When appended frames are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every publish: a returned `publish` is durable. The
    /// default, and the only policy under which the crash-recovery
    /// guarantee covers every acknowledged batch.
    #[default]
    Always,
    /// fsync every `n`-th publish (and on rotation/shutdown): bounded
    /// loss window, much higher throughput.
    EveryN(u32),
    /// Never fsync explicitly; leave flushing to the OS. Benchmarks and
    /// bulk loads only.
    Never,
}

/// One batch replayed from the log during recovery.
#[derive(Debug, Clone)]
pub struct RecoveredBatch {
    /// Segment the batch lives in.
    pub segment: u64,
    /// Frame offset within that segment.
    pub offset: u64,
    /// The publish epoch.
    pub epoch: Epoch,
    /// The batch's transactions.
    pub txns: Vec<Transaction>,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Replayable batches from all live segments, in append order.
    pub batches: Vec<RecoveredBatch>,
    /// Bytes of torn tail truncated from the active segment.
    pub torn_bytes_truncated: u64,
    /// Live segments scanned.
    pub segments_scanned: usize,
    /// Corrupt frames (checksum-invalid or undecodable) skipped during
    /// recovery. Their transactions are simply absent from the reopened
    /// archive — a mesh peer's anti-entropy refills them — rather than
    /// failing the whole open.
    pub corrupt_frames_skipped: u64,
}

/// The append-only segmented log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    active: ActiveSegment,
    sealed: Vec<u64>,
    segment_max_bytes: u64,
    sync_policy: SyncPolicy,
    appends_since_sync: u32,
}

impl Wal {
    /// Open the log in `dir`, replaying every segment with sequence number
    /// greater than `watermark` (segments at or below it are covered by a
    /// snapshot; stale ones left behind by a crash mid-compaction are
    /// deleted here).
    ///
    /// The highest-numbered segment may end in a torn frame, which is
    /// truncated away. A checksum-invalid frame anywhere is **skipped**
    /// (and counted in [`WalRecovery::corrupt_frames_skipped`]) rather
    /// than failing the open: no single rotten frame holds the rest of
    /// the archive hostage, and the missing history is re-pullable from
    /// mesh neighbors. When corruption makes a suffix of the *active*
    /// segment unframeable, that suffix is truncated so later appends
    /// land at a verified boundary.
    pub fn open(
        dir: &Path,
        watermark: Option<u64>,
        segment_max_bytes: u64,
        sync_policy: SyncPolicy,
    ) -> crate::Result<(Wal, WalRecovery)> {
        let all = list_segments(dir)?;
        let mut stale = Vec::new();
        let mut live = Vec::new();
        for seq in all {
            if watermark.is_some_and(|w| seq <= w) {
                stale.push(seq);
            } else {
                live.push(seq);
            }
        }
        for seq in stale {
            let path = dir.join(segment_file_name(seq));
            fs::remove_file(&path).map_err(|e| super::segment::io_err("remove", &path, &e))?;
        }

        let mut recovery = WalRecovery::default();
        let mut active_len = 0u64;
        for (i, &seq) in live.iter().enumerate() {
            let is_last = i + 1 == live.len();
            let path = dir.join(segment_file_name(seq));
            let scan = scan_segment_lossy(&path, is_last)?;
            recovery.corrupt_frames_skipped += scan.corrupt.len() as u64;
            // An open-ended corrupt region (implausible length prefix, or
            // a non-tail torn frame) makes everything after it
            // unframeable. On the active segment, truncate that garbage
            // away exactly like a torn tail, so appends resume at a
            // verified frame boundary; on a sealed segment the suffix is
            // simply lost (already counted above).
            let unframeable_suffix = scan.corrupt.last().is_some_and(|r| r.len.is_none());
            if scan.torn_bytes > 0 || (is_last && unframeable_suffix) {
                let file_len = std::fs::metadata(&path)
                    .map_err(|e| super::segment::io_err("stat", &path, &e))?
                    .len();
                truncate_segment(&path, scan.valid_len)?;
                recovery.torn_bytes_truncated += file_len - scan.valid_len;
            }
            for f in scan.frames {
                let Ok((epoch, txns)) = decode_batch(&f.payload) else {
                    // CRC-valid but undecodable: corrupt in a way the
                    // checksum happens to cover. Same policy: skip it.
                    recovery.corrupt_frames_skipped += 1;
                    continue;
                };
                recovery.batches.push(RecoveredBatch {
                    segment: seq,
                    offset: f.offset,
                    epoch,
                    txns,
                });
            }
            if is_last {
                active_len = scan.valid_len;
            }
            recovery.segments_scanned += 1;
        }

        let (active_seq, sealed) = match live.split_last() {
            Some((&last, rest)) => (last, rest.to_vec()),
            // Fresh log (or everything compacted away): start one past the
            // watermark so sequence numbers never repeat.
            None => (watermark.unwrap_or(0) + 1, Vec::new()),
        };
        let active = ActiveSegment::open(dir, active_seq, active_len)?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                active,
                sealed,
                segment_max_bytes,
                sync_policy,
                appends_since_sync: 0,
            },
            recovery,
        ))
    }

    /// Append one publish batch; returns `(segment, offset)` of its frame.
    pub fn append_batch(
        &mut self,
        epoch: Epoch,
        txns: &[Transaction],
    ) -> crate::Result<(u64, u64)> {
        orchestra_obs::time_histogram!("store.wal.append_micros", {
            if !self.active.is_empty() && self.active.len() >= self.segment_max_bytes {
                self.rotate()?;
            }
            let payload = encode_batch(epoch, txns);
            if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
                return Err(StoreError::InvalidConfig(format!(
                    "publish batch encodes to {} bytes, exceeding the {} byte frame cap \
                     — split the batch",
                    payload.len(),
                    MAX_FRAME_LEN
                )));
            }
            let framed = frame(&payload);
            let offset = self.active.append(&framed)?;
            match self.sync_policy {
                SyncPolicy::Always => self.sync_active()?,
                SyncPolicy::EveryN(n) => {
                    self.appends_since_sync += 1;
                    if self.appends_since_sync >= n.max(1) {
                        self.sync_active()?;
                        self.appends_since_sync = 0;
                    }
                }
                SyncPolicy::Never => {}
            }
            Ok((self.active.seq, offset))
        })
    }

    /// fsync the active segment, recording a `store.wal.fsync` span and
    /// the `store.wal.fsync_micros` latency histogram.
    fn sync_active(&mut self) -> crate::Result<()> {
        let _span = orchestra_obs::span!("store.wal.fsync", segment = self.active.seq);
        orchestra_obs::time_histogram!("store.wal.fsync_micros", self.active.sync())
    }

    /// Seal the active segment and start a new one.
    pub fn rotate(&mut self) -> crate::Result<u64> {
        // Failpoint `store.wal.rotate`: fail before sealing — the active
        // segment stays active and appendable, so a caller retry simply
        // rotates later.
        if orchestra_fault::check("store.wal.rotate").is_some() {
            return Err(super::segment::injected_err("rotate", self.active.path()));
        }
        orchestra_obs::counter!("store.wal.rotations", 1);
        self.sync_active()?;
        let sealed_seq = self.active.seq;
        self.sealed.push(sealed_seq);
        self.active = ActiveSegment::open(&self.dir, sealed_seq + 1, 0)?;
        self.appends_since_sync = 0;
        Ok(sealed_seq)
    }

    /// Force outstanding appends to stable storage.
    pub fn sync(&mut self) -> crate::Result<()> {
        self.appends_since_sync = 0;
        self.sync_active()
    }

    /// The active segment's sequence number.
    pub fn active_seq(&self) -> u64 {
        self.active.seq
    }

    /// Bytes in the active segment.
    pub fn active_len(&self) -> u64 {
        self.active.len()
    }

    /// Sealed segments still on disk, ascending.
    pub fn sealed_segments(&self) -> &[u64] {
        &self.sealed
    }

    /// Total live segment count (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Delete sealed segments `<= watermark` (they are now covered by a
    /// snapshot).
    pub fn remove_covered(&mut self, watermark: u64) -> crate::Result<usize> {
        let mut removed = 0;
        for &seq in &self.sealed {
            if seq <= watermark {
                let path = self.dir.join(segment_file_name(seq));
                fs::remove_file(&path).map_err(|e| super::segment::io_err("remove", &path, &e))?;
                removed += 1;
            }
        }
        self.sealed.retain(|&s| s > watermark);
        Ok(removed)
    }

    /// Read one batch frame back from disk (the no-cache fetch path).
    pub fn read_batch_at(
        &self,
        segment: u64,
        offset: u64,
    ) -> crate::Result<(Epoch, Vec<Transaction>)> {
        read_batch_from(&self.dir.join(segment_file_name(segment)), offset)
    }
}

/// Read and decode the single batch frame at `offset` in any
/// frame-formatted file (segment or snapshot), via a positioned read —
/// never loading the whole file (snapshots can exceed RAM in
/// `CacheMode::DiskOnly`).
pub fn read_batch_from(path: &Path, offset: u64) -> crate::Result<(Epoch, Vec<Transaction>)> {
    use std::io::{Seek, SeekFrom};
    let mut file = fs::File::open(path).map_err(|e| super::segment::io_err("open", path, &e))?;
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| super::segment::io_err("seek", path, &e))?;
    let (_, outcome) = FrameReader::new(&mut file, offset)
        .next_frame()
        .map_err(|e| super::segment::io_err("read", path, &e))?;
    match outcome {
        FrameRead::Ok { payload, .. } => decode_batch(&payload).map_err(|e| StoreError::Corrupt {
            path: path.display().to_string(),
            offset,
            reason: format!("undecodable batch record: {e}"),
        }),
        other => Err(StoreError::Corrupt {
            path: path.display().to_string(),
            offset,
            reason: format!("expected a frame at this offset, found {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, TxnId, Update};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("orchestra-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn txn(seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new("P"), seq),
            Epoch::new(1),
            vec![Update::insert("R", tuple![seq as i64])],
        )
    }

    #[test]
    fn append_recover_roundtrip() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut wal, rec) = Wal::open(&dir, None, 1 << 20, SyncPolicy::Always).unwrap();
            assert!(rec.batches.is_empty());
            wal.append_batch(Epoch::new(1), &[txn(1), txn(2)]).unwrap();
            wal.append_batch(Epoch::new(2), &[txn(3)]).unwrap();
        }
        let (_, rec) = Wal::open(&dir, None, 1 << 20, SyncPolicy::Always).unwrap();
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0].txns.len(), 2);
        assert_eq!(rec.batches[1].epoch, Epoch::new(2));
        assert_eq!(rec.torn_bytes_truncated, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_at_threshold() {
        let dir = tmp_dir("rotate");
        let (mut wal, _) = Wal::open(&dir, None, 64, SyncPolicy::Always).unwrap();
        for i in 0..10 {
            wal.append_batch(Epoch::new(1), &[txn(i)]).unwrap();
        }
        assert!(wal.segment_count() > 1, "tiny threshold forces rotation");
        // Reopen sees all batches across segments.
        drop(wal);
        let (wal, rec) = Wal::open(&dir, None, 64, SyncPolicy::Always).unwrap();
        assert_eq!(rec.batches.len(), 10);
        assert!(rec.segments_scanned > 1);
        assert_eq!(wal.segment_count(), rec.segments_scanned);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, None, 1 << 20, SyncPolicy::Always).unwrap();
            wal.append_batch(Epoch::new(1), &[txn(1)]).unwrap();
            wal.append_batch(Epoch::new(2), &[txn(2)]).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let seg = dir.join(segment_file_name(1));
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();

        let (mut wal, rec) = Wal::open(&dir, None, 1 << 20, SyncPolicy::Always).unwrap();
        assert_eq!(rec.batches.len(), 1, "only the intact batch survives");
        assert!(rec.torn_bytes_truncated > 0);
        // The log is append-able again and the repaired tail is reused.
        wal.append_batch(Epoch::new(3), &[txn(3)]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, None, 1 << 20, SyncPolicy::Always).unwrap();
        assert_eq!(rec.batches.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_batch_at_location() {
        let dir = tmp_dir("readat");
        let (mut wal, _) = Wal::open(&dir, None, 1 << 20, SyncPolicy::Always).unwrap();
        let (seg, off) = wal.append_batch(Epoch::new(4), &[txn(9)]).unwrap();
        let (epoch, txns) = wal.read_batch_at(seg, off).unwrap();
        assert_eq!(epoch, Epoch::new(4));
        assert_eq!(txns[0].id, TxnId::new(PeerId::new("P"), 9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watermark_skips_and_removes_covered_segments() {
        let dir = tmp_dir("watermark");
        let (mut wal, _) = Wal::open(&dir, None, 1, SyncPolicy::Always).unwrap();
        for i in 0..4 {
            wal.append_batch(Epoch::new(1), &[txn(i)]).unwrap();
        }
        let sealed_through = *wal.sealed_segments().last().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, Some(sealed_through), 1, SyncPolicy::Always).unwrap();
        // Only batches in segments beyond the watermark replay, and the
        // covered files are gone from disk.
        assert!(rec.batches.iter().all(|b| b.segment > sealed_through));
        assert!(list_segments(&dir)
            .unwrap()
            .iter()
            .all(|&s| s > sealed_through));
        fs::remove_dir_all(&dir).unwrap();
    }
}
