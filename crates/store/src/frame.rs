//! Checksummed, length-prefixed framing shared by the durable archive's
//! on-disk files and the network wire protocol (`orchestra-net`).
//!
//! A frame is the unit of atomicity for both consumers: the WAL appends
//! one frame per publish batch (a crash mid-append leaves a torn tail
//! that recovery truncates), and the peer server/client exchange one
//! frame per request or response (a connection cut mid-frame reads as
//! torn, a flipped bit as corrupt — never as a shorter valid message).
//! Keeping the layout in one module guarantees durable and net bytes
//! stay identical:
//!
//! ```text
//! frame := len:u32le crc:u32le payload[len]     (crc over payload)
//! ```

/// Frame header size: u32 length + u32 checksum.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one frame's payload. A corrupt length prefix must not
/// drive a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

// ---------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c; // analyze: allow(panic) -- i < 256 by the enclosing loop guard
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        // analyze: allow(panic) -- index masked with & 0xff, always < 256
        c = (c >> 8) ^ CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize];
    }
    !c
}

// ---------------------------------------------------------------- frames

/// Wrap a payload in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= u64::from(MAX_FRAME_LEN),
        "oversized frame"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The outcome of reading one frame from a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, checksum-valid frame payload of the given total
    /// on-disk size (header + payload).
    Ok {
        /// The verified payload bytes.
        payload: Vec<u8>,
        /// Total bytes consumed from the stream.
        size: usize,
    },
    /// The stream ends exactly here — a clean end.
    Eof,
    /// The stream ends mid-frame (short header or short payload): the
    /// torn-tail signature of a crash during append, or a connection cut
    /// mid-message.
    Torn,
    /// A complete frame whose checksum (or length prefix) is invalid.
    Corrupt {
        /// Why the frame was rejected.
        reason: String,
        /// Total bytes (header + payload) the frame spans when its
        /// structure was still parseable — a lossy scanner can skip this
        /// many bytes and resynchronize at the next frame boundary.
        /// `None` when the length prefix itself is implausible: nothing
        /// past this point can be scanned.
        resync: Option<u64>,
    },
}

/// Read the frame starting at `buf[offset..]` — a thin adapter over
/// [`FrameReader`] so there is exactly one frame parser (the streaming
/// one every production path uses).
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    let rest = &buf[offset.min(buf.len())..]; // analyze: allow(panic) -- offset clamped to buf.len()
    match FrameReader::new(rest, 0).next_frame() {
        Ok((_, outcome)) => outcome,
        Err(e) => FrameRead::Corrupt {
            reason: format!("read error from in-memory buffer: {e}"),
            resync: None,
        },
    }
}

/// Streaming frame iteration over any [`Read`](std::io::Read) source,
/// holding one frame in memory at a time. This is what keeps recovery and
/// compaction memory bounded by the largest *frame*, not the file — and
/// what lets the network peer read one message at a time off a socket.
pub struct FrameReader<R> {
    inner: R,
    offset: u64,
}

impl<R: std::io::Read> FrameReader<R> {
    /// Wrap a reader positioned at a frame boundary (`base_offset` is that
    /// position's byte offset within the file, for error reporting).
    pub fn new(inner: R, base_offset: u64) -> Self {
        FrameReader {
            inner,
            offset: base_offset,
        }
    }

    /// Byte offset of the next frame header.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read the next frame. Returns the frame's starting offset alongside
    /// the outcome; I/O errors other than clean EOF surface as `Err`.
    pub fn next_frame(&mut self) -> std::io::Result<(u64, FrameRead)> {
        let start = self.offset;
        let mut header = [0u8; FRAME_HEADER];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            0 => return Ok((start, FrameRead::Eof)),
            n if n < FRAME_HEADER => return Ok((start, FrameRead::Torn)),
            _ => {}
        }
        // analyze: allow(panic) -- 4-byte slices of the FRAME_HEADER buffer; try_into is infallible
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        // analyze: allow(panic) -- 4-byte slices of the FRAME_HEADER buffer; try_into is infallible
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Ok((
                start,
                FrameRead::Corrupt {
                    reason: format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
                    resync: None,
                },
            ));
        }
        let mut payload = vec![0u8; len as usize];
        let got = read_exact_or_eof(&mut self.inner, &mut payload)?;
        if got < payload.len() {
            return Ok((start, FrameRead::Torn));
        }
        let actual = crc32(&payload);
        if actual != crc {
            // The frame's structure parsed (the whole payload was read
            // off the stream), only the content is bad: advance past it
            // so a lossy caller can keep scanning subsequent frames.
            self.offset = start + (FRAME_HEADER + payload.len()) as u64;
            return Ok((
                start,
                FrameRead::Corrupt {
                    reason: format!(
                        "checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"
                    ),
                    resync: Some((FRAME_HEADER + payload.len()) as u64),
                },
            ));
        }
        self.offset = start + (FRAME_HEADER + payload.len()) as u64;
        Ok((
            start,
            FrameRead::Ok {
                size: FRAME_HEADER + payload.len(),
                payload,
            },
        ))
    }
}

/// Fill `buf` as far as the stream allows; returns bytes read (< len only
/// at end of stream).
fn read_exact_or_eof<R: std::io::Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        // analyze: allow(panic) -- filled < buf.len() by the loop guard
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn frame_roundtrip_and_torn_detection() {
        let payload = b"a payload of some bytes".to_vec();
        let framed = frame(&payload);
        match read_frame(&framed, 0) {
            FrameRead::Ok { payload: p, size } => {
                assert_eq!(p, payload);
                assert_eq!(size, framed.len());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&framed, framed.len()), FrameRead::Eof);
        // Every strict prefix is torn, never corrupt or ok.
        for cut in 1..framed.len() {
            assert_eq!(
                read_frame(&framed[..cut], 0),
                FrameRead::Torn,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn frame_flips_are_corrupt() {
        let framed = frame(b"sensitive bits");
        // Flip each payload byte: checksum must catch it.
        for i in FRAME_HEADER..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }),
                "flipped byte {i}"
            );
        }
        // A corrupted stored-crc is also caught.
        let mut bad = framed.clone();
        bad[5] ^= 0x01;
        assert!(matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }));
        // An absurd length prefix is rejected before allocating.
        let mut bad = framed;
        bad[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }));
    }

    #[test]
    fn frame_reader_streams_and_classifies() {
        let a = frame(b"first");
        let b = frame(b"second");
        let mut bytes = a.clone();
        bytes.extend_from_slice(&b);
        let mut r = FrameReader::new(&bytes[..], 0);
        match r.next_frame().unwrap() {
            (0, FrameRead::Ok { payload, .. }) => assert_eq!(payload, b"first"),
            other => panic!("{other:?}"),
        }
        match r.next_frame().unwrap() {
            (off, FrameRead::Ok { payload, .. }) => {
                assert_eq!(off, a.len() as u64);
                assert_eq!(payload, b"second");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(r.next_frame().unwrap(), (_, FrameRead::Eof)));
        // Torn: stream cut mid-payload.
        let cut = &bytes[..a.len() + 9];
        let mut r = FrameReader::new(cut, 0);
        assert!(matches!(r.next_frame().unwrap(), (0, FrameRead::Ok { .. })));
        assert!(matches!(r.next_frame().unwrap(), (_, FrameRead::Torn)));
        // Corrupt: flipped byte.
        let mut bad = frame(b"x");
        bad[8] ^= 1;
        let mut r = FrameReader::new(&bad[..], 0);
        assert!(matches!(
            r.next_frame().unwrap(),
            (0, FrameRead::Corrupt { .. })
        ));
    }
}
