//! The simulated peer-to-peer replicated store.
//!
//! `N` virtual storage nodes sit on a consistent-hash ring. A transaction's
//! payload is written to the first `R` **alive** nodes clockwise from its
//! hash point at publish time. Nodes can later be taken offline; a fetch
//! probes the holders recorded at publish time and succeeds if any is
//! alive. The epoch→ids metadata index is modeled as always available (in
//! a real DHT it would itself be replicated; the experiments measure
//! *payload* availability, which is where replication factor and churn
//! interact).

use crate::api::{
    check_batch_ids, check_epoch_monotone, collect_page, index_epoch_ids, AtomicStats,
};
use crate::api::{FetchCursor, FetchPage, StoreError, StoreStats, UpdateStore};
use orchestra_updates::{Epoch, Transaction, TxnId};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// FNV-1a over the id string — deterministic ring placement, no RNG.
fn ring_hash(id: &TxnId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[derive(Debug)]
struct StoredTxn {
    txn: Transaction,
    /// Indexes of the storage nodes holding the payload.
    holders: Vec<usize>,
}

#[derive(Debug)]
struct Inner {
    nodes_alive: Vec<bool>,
    /// Epoch → txn ids, each epoch's list kept sorted (the paged scan
    /// order is `(epoch, id)`).
    by_epoch: BTreeMap<Epoch, Vec<TxnId>>,
    by_id: HashMap<TxnId, StoredTxn>,
}

/// The simulated DHT store.
#[derive(Debug)]
pub struct ReplicatedStore {
    num_nodes: usize,
    replication: usize,
    inner: RwLock<Inner>,
    stats: AtomicStats,
}

impl ReplicatedStore {
    /// Create a store over `num_nodes` virtual nodes with replication
    /// factor `replication` (clamped to `num_nodes`).
    pub fn new(num_nodes: usize, replication: usize) -> crate::Result<Self> {
        if num_nodes == 0 {
            return Err(StoreError::InvalidConfig(
                "store needs at least one node".into(),
            ));
        }
        if replication == 0 {
            return Err(StoreError::InvalidConfig(
                "replication factor must be at least 1".into(),
            ));
        }
        Ok(ReplicatedStore {
            num_nodes,
            replication: replication.min(num_nodes),
            inner: RwLock::new(Inner {
                nodes_alive: vec![true; num_nodes],
                by_epoch: BTreeMap::new(),
                by_id: HashMap::new(),
            }),
            stats: AtomicStats::default(),
        })
    }

    /// Number of virtual storage nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Take a storage node offline (subsequent fetches cannot probe it).
    pub fn take_node_down(&self, node: usize) {
        if let Some(slot) = self.inner.write().nodes_alive.get_mut(node) {
            *slot = false;
        }
    }

    /// Bring a storage node back online.
    pub fn bring_node_up(&self, node: usize) {
        if let Some(slot) = self.inner.write().nodes_alive.get_mut(node) {
            *slot = true;
        }
    }

    /// Number of alive nodes.
    pub fn alive_nodes(&self) -> usize {
        self.inner.read().nodes_alive.iter().filter(|&&a| a).count()
    }

    /// The storage nodes recorded as holding a transaction's payload at
    /// publish time, if archived. Introspection for tests, experiments,
    /// and operators staging targeted churn.
    pub fn holders(&self, id: &TxnId) -> Option<Vec<usize>> {
        self.inner.read().by_id.get(id).map(|st| st.holders.clone())
    }

    /// Fraction of archived transactions whose payload is currently
    /// reachable (≥1 alive holder).
    pub fn availability(&self) -> f64 {
        let inner = self.inner.read();
        if inner.by_id.is_empty() {
            return 1.0;
        }
        let reachable = inner
            .by_id
            .values()
            .filter(|st| st.holders.iter().any(|&h| inner.nodes_alive[h]))
            .count();
        reachable as f64 / inner.by_id.len() as f64
    }

    /// The holders chosen for a given id: first `replication` alive nodes
    /// clockwise from the hash point (at publish time).
    fn choose_holders(&self, alive: &[bool], id: &TxnId) -> Vec<usize> {
        let start = (ring_hash(id) % self.num_nodes as u64) as usize;
        let mut holders = Vec::with_capacity(self.replication);
        for off in 0..self.num_nodes {
            let node = (start + off) % self.num_nodes;
            if alive[node] {
                holders.push(node);
                if holders.len() == self.replication {
                    break;
                }
            }
        }
        holders
    }

    /// Probe a stored transaction's holders in order; `Some(probes)` when
    /// an alive one was found, `None` (with every holder probed) when not.
    fn probe(alive: &[bool], st: &StoredTxn) -> (bool, u64) {
        let mut probes = 0u64;
        for &h in &st.holders {
            probes += 1;
            if alive[h] {
                return (true, probes);
            }
        }
        (false, probes)
    }
}

impl UpdateStore for ReplicatedStore {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> crate::Result<()> {
        if txns.is_empty() {
            return Ok(()); // Vacuous: nothing a cursor could miss.
        }
        let mut inner = self.inner.write();
        check_batch_ids(&txns, |id| inner.by_id.contains_key(id))?;
        check_epoch_monotone(epoch, inner.by_epoch.keys().next_back().copied())?;
        // Choose every replica set up front so the batch is atomic: if any
        // transaction has no alive node to land on, nothing is archived —
        // a publish that "succeeds" with zero holders would archive a
        // payload that is permanently unreachable.
        let mut placements: Vec<Vec<usize>> = Vec::with_capacity(txns.len());
        let mut degraded = 0u64;
        for t in &txns {
            let holders = self.choose_holders(&inner.nodes_alive, &t.id);
            if holders.is_empty() {
                return Err(StoreError::Unavailable {
                    txn: t.id.to_string(),
                });
            }
            if holders.len() < self.replication {
                degraded += 1;
            }
            placements.push(holders);
        }
        let n = txns.len() as u64;
        let mut probes = 0u64;
        let mut ids = Vec::with_capacity(txns.len());
        for (mut t, holders) in txns.into_iter().zip(placements) {
            t.epoch = epoch;
            probes += holders.len() as u64;
            ids.push(t.id.clone());
            inner
                .by_id
                .insert(t.id.clone(), StoredTxn { txn: t, holders });
        }
        index_epoch_ids(&mut inner.by_epoch, epoch, ids);
        self.stats.add_probes(probes);
        self.stats.add_published(n);
        self.stats.add_degraded(degraded);
        Ok(())
    }

    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> crate::Result<FetchPage> {
        let inner = self.inner.read();
        let (positions, next_cursor) = collect_page(&inner.by_epoch, cursor, limit);
        let mut txns = Vec::new();
        let mut unavailable = Vec::new();
        let mut probes = 0u64;
        for (ep, id) in positions {
            let st = &inner.by_id[&id];
            // Probe holder liveness *before* touching the payload: a miss
            // must not pay for a deep clone it will throw away.
            let (found, p) = ReplicatedStore::probe(&inner.nodes_alive, st);
            probes += p;
            if found {
                txns.push(st.txn.clone());
            } else {
                unavailable.push((ep, id));
            }
        }
        self.stats.add_probes(probes);
        self.stats.add_fetched(txns.len() as u64);
        self.stats.add_misses(unavailable.len() as u64);
        self.stats.add_unavailable(unavailable.len() as u64);
        self.stats.add_pages(1);
        Ok(FetchPage {
            txns,
            unavailable,
            next_cursor,
        })
    }

    fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>> {
        let inner = self.inner.read();
        let Some(st) = inner.by_id.get(id) else {
            return Ok(None);
        };
        let (found, probes) = ReplicatedStore::probe(&inner.nodes_alive, st);
        self.stats.add_probes(probes);
        if found {
            self.stats.add_fetched(1);
            Ok(Some(st.txn.clone()))
        } else {
            self.stats.add_misses(1);
            Err(StoreError::Unavailable {
                txn: id.to_string(),
            })
        }
    }

    fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    fn latest_epoch(&self) -> Option<Epoch> {
        self.inner.read().by_epoch.keys().next_back().copied()
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, Update};

    fn txn(peer: &str, seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new(peer), seq),
            Epoch::zero(),
            vec![Update::insert("R", tuple![seq as i64])],
        )
    }

    #[test]
    fn config_validation() {
        assert!(ReplicatedStore::new(0, 1).is_err());
        assert!(ReplicatedStore::new(4, 0).is_err());
        let s = ReplicatedStore::new(4, 10).unwrap();
        assert_eq!(s.replication(), 4, "replication clamped to node count");
    }

    #[test]
    fn publish_fetch_roundtrip() {
        let s = ReplicatedStore::new(8, 3).unwrap();
        s.publish(Epoch::new(1), (0..10).map(|i| txn("A", i)).collect())
            .unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn survives_churn_within_replication_factor() {
        let s = ReplicatedStore::new(10, 3).unwrap();
        s.publish(Epoch::new(1), (0..50).map(|i| txn("B", i)).collect())
            .unwrap();
        // Take down 2 nodes (< replication factor): everything reachable.
        s.take_node_down(0);
        s.take_node_down(5);
        assert_eq!(s.alive_nodes(), 8);
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 50);
        assert_eq!(s.availability(), 1.0);
    }

    #[test]
    fn unreplicated_store_loses_data_on_churn() {
        let s = ReplicatedStore::new(4, 1).unwrap();
        s.publish(Epoch::new(1), (0..40).map(|i| txn("C", i)).collect())
            .unwrap();
        for n in 0..2 {
            s.take_node_down(n);
        }
        // With R=1 and half the nodes down, some payloads are gone.
        assert!(s.availability() < 1.0);
        assert!(matches!(
            s.fetch_since(Epoch::zero()),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(s.stats().misses > 0);
        assert!(s.stats().unavailable > 0);
    }

    #[test]
    fn paged_fetch_skips_gaps_instead_of_failing() {
        let s = ReplicatedStore::new(4, 1).unwrap();
        s.publish(Epoch::new(1), (0..40).map(|i| txn("C", i)).collect())
            .unwrap();
        for n in 0..2 {
            s.take_node_down(n);
        }
        // The one-shot fetch fails; the paged fetch makes partial progress.
        assert!(s.fetch_since(Epoch::zero()).is_err());
        let (mut reachable, mut lost) = (0usize, 0usize);
        for page in crate::api::pages(&s, FetchCursor::after_epoch(Epoch::zero()), 7) {
            let page = page.unwrap();
            reachable += page.txns.len();
            lost += page.unavailable.len();
        }
        assert_eq!(reachable + lost, 40, "every position is scanned");
        assert!(reachable > 0 && lost > 0);
        // Recovery: the frozen position becomes fetchable again.
        let (_, first_lost) = crate::api::pages(&s, FetchCursor::after_epoch(Epoch::zero()), 7)
            .find_map(|p| p.unwrap().unavailable.first().cloned())
            .expect("gap exists");
        for n in 0..2 {
            s.bring_node_up(n);
        }
        let retry = s
            .fetch_page(&FetchCursor::at_txn(Epoch::new(1), first_lost.clone()), 1)
            .unwrap();
        assert_eq!(retry.txns.len(), 1);
        assert_eq!(retry.txns[0].id, first_lost);
    }

    #[test]
    fn node_recovery_restores_availability() {
        let s = ReplicatedStore::new(4, 1).unwrap();
        s.publish(Epoch::new(1), (0..40).map(|i| txn("D", i)).collect())
            .unwrap();
        for n in 0..4 {
            s.take_node_down(n);
        }
        assert_eq!(s.availability(), 0.0);
        for n in 0..4 {
            s.bring_node_up(n);
        }
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.fetch_since(Epoch::zero()).unwrap().len(), 40);
    }

    #[test]
    fn origin_peer_offline_is_irrelevant() {
        // Scenario 5's property: the *publisher* going away does not matter;
        // only storage nodes do. Publishing then never touching the
        // publisher again still lets others fetch.
        let s = ReplicatedStore::new(8, 2).unwrap();
        s.publish(Epoch::new(1), vec![txn("Beijing", 1), txn("Beijing", 2)])
            .unwrap();
        // (No "Beijing" node exists to take down — peers ≠ storage nodes.)
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn fetch_single_and_duplicate_rejection() {
        let s = ReplicatedStore::new(4, 2).unwrap();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        assert!(s.fetch(&TxnId::new(PeerId::new("A"), 1)).unwrap().is_some());
        assert!(s.fetch(&TxnId::new(PeerId::new("A"), 9)).unwrap().is_none());
        assert!(matches!(
            s.publish(Epoch::new(2), vec![txn("A", 1)]),
            Err(StoreError::DuplicateTxn(_))
        ));
        assert!(matches!(
            s.publish(Epoch::new(2), vec![txn("B", 1), txn("B", 1)]),
            Err(StoreError::DuplicateTxn(_))
        ));
        assert_eq!(s.len(), 1, "in-batch duplicate rejected atomically");
    }

    #[test]
    fn publish_routes_around_dead_nodes() {
        let s = ReplicatedStore::new(4, 2).unwrap();
        // Kill two nodes *before* publishing: replicas land on the alive two.
        s.take_node_down(0);
        s.take_node_down(1);
        s.publish(Epoch::new(1), (0..20).map(|i| txn("E", i)).collect())
            .unwrap();
        assert_eq!(s.availability(), 1.0);
        // Killing the remaining nodes loses everything.
        s.take_node_down(2);
        s.take_node_down(3);
        assert_eq!(s.availability(), 0.0);
        // Bringing back an originally-dead node does not help: it holds no
        // payloads.
        s.bring_node_up(0);
        assert_eq!(s.availability(), 0.0);
    }

    #[test]
    fn publish_with_zero_alive_nodes_fails_atomically() {
        let s = ReplicatedStore::new(4, 2).unwrap();
        for n in 0..4 {
            s.take_node_down(n);
        }
        let err = s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)]);
        assert!(matches!(err, Err(StoreError::Unavailable { .. })));
        assert_eq!(s.len(), 0, "nothing archived — no unreachable ghosts");
        assert_eq!(s.stats().published, 0);
        // With a node back, the same publish succeeds (degraded: 1 < 2).
        s.bring_node_up(0);
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
            .unwrap();
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.stats().degraded, 2, "both txns under-replicated");
    }

    #[test]
    fn degraded_counter_tracks_under_replication() {
        let s = ReplicatedStore::new(4, 3).unwrap();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        assert_eq!(s.stats().degraded, 0);
        s.take_node_down(0);
        s.take_node_down(1);
        // Only 2 alive < replication 3: every new publish is degraded.
        s.publish(Epoch::new(2), vec![txn("A", 2), txn("A", 3)])
            .unwrap();
        assert_eq!(s.stats().degraded, 2);
    }

    #[test]
    fn holders_are_recorded_at_publish_time() {
        let s = ReplicatedStore::new(8, 3).unwrap();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let held = s.holders(&TxnId::new(PeerId::new("A"), 1)).unwrap();
        assert_eq!(held.len(), 3);
        assert!(s.holders(&TxnId::new(PeerId::new("Z"), 1)).is_none());
    }

    #[test]
    fn latest_epoch_and_probe_stats() {
        let s = ReplicatedStore::new(4, 2).unwrap();
        s.publish(Epoch::new(2), vec![txn("A", 1)]).unwrap();
        assert_eq!(s.latest_epoch(), Some(Epoch::new(2)));
        s.fetch_since(Epoch::zero()).unwrap();
        let st = s.stats();
        assert!(st.probes >= 3, "publish probes + fetch probes");
        assert_eq!(st.fetched, 1);
    }

    #[test]
    fn ring_hash_is_deterministic() {
        let a = ring_hash(&TxnId::new(PeerId::new("A"), 1));
        let b = ring_hash(&TxnId::new(PeerId::new("A"), 1));
        let c = ring_hash(&TxnId::new(PeerId::new("A"), 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
