//! The centralized in-memory archive.

use crate::api::{StoreError, StoreStats, UpdateStore};
use orchestra_updates::{Epoch, Transaction, TxnId};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Default)]
struct Inner {
    by_epoch: BTreeMap<Epoch, Vec<TxnId>>,
    by_id: HashMap<TxnId, Transaction>,
    stats: StoreStats,
}

/// A centralized, always-available archive — the reference implementation
/// and the store used by most tests and examples.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    inner: RwLock<Inner>,
}

impl InMemoryStore {
    /// An empty archive.
    pub fn new() -> Self {
        InMemoryStore::default()
    }
}

impl UpdateStore for InMemoryStore {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> crate::Result<()> {
        let mut inner = self.inner.write();
        for t in &txns {
            if inner.by_id.contains_key(&t.id) {
                return Err(StoreError::DuplicateTxn(t.id.to_string()));
            }
        }
        for mut t in txns {
            t.epoch = epoch;
            inner.by_epoch.entry(epoch).or_default().push(t.id.clone());
            inner.by_id.insert(t.id.clone(), t);
            inner.stats.published += 1;
        }
        Ok(())
    }

    fn fetch_since(&self, since: Epoch) -> crate::Result<Vec<Transaction>> {
        let mut inner = self.inner.write();
        let mut ids: Vec<(Epoch, TxnId)> = Vec::new();
        for (&ep, txids) in inner.by_epoch.range(since.next()..) {
            for id in txids {
                ids.push((ep, id.clone()));
            }
        }
        ids.sort();
        let out: Vec<Transaction> = ids.iter().map(|(_, id)| inner.by_id[id].clone()).collect();
        inner.stats.fetched += out.len() as u64;
        Ok(out)
    }

    fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>> {
        let mut inner = self.inner.write();
        let got = inner.by_id.get(id).cloned();
        if got.is_some() {
            inner.stats.fetched += 1;
        }
        Ok(got)
    }

    fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    fn latest_epoch(&self) -> Option<Epoch> {
        self.inner.read().by_epoch.keys().next_back().copied()
    }

    fn stats(&self) -> StoreStats {
        self.inner.read().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, Update};

    fn txn(peer: &str, seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new(peer), seq),
            Epoch::zero(),
            vec![Update::insert("R", tuple![seq as i64])],
        )
    }

    #[test]
    fn publish_and_fetch_since() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 3);
        // Epochs stamp onto transactions.
        assert!(all.iter().all(|t| t.epoch >= Epoch::new(1)));
        let recent = s.fetch_since(Epoch::new(1)).unwrap();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].id, TxnId::new(PeerId::new("A"), 2));
    }

    #[test]
    fn fetch_order_is_deterministic() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1)])
            .unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all[0].id.peer.name(), "A");
        assert_eq!(all[1].id.peer.name(), "B");
    }

    #[test]
    fn duplicate_rejected_atomically() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let err = s.publish(Epoch::new(2), vec![txn("C", 1), txn("A", 1)]);
        assert!(matches!(err, Err(StoreError::DuplicateTxn(_))));
        // The batch failed atomically: C#1 was not archived.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fetch_by_id() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let got = s.fetch(&TxnId::new(PeerId::new("A"), 1)).unwrap();
        assert!(got.is_some());
        assert!(s.fetch(&TxnId::new(PeerId::new("Z"), 9)).unwrap().is_none());
    }

    #[test]
    fn latest_epoch_and_len() {
        let s = InMemoryStore::new();
        assert!(s.is_empty());
        assert_eq!(s.latest_epoch(), None);
        s.publish(Epoch::new(3), vec![txn("A", 1)]).unwrap();
        s.publish(Epoch::new(5), vec![txn("A", 2)]).unwrap();
        assert_eq!(s.latest_epoch(), Some(Epoch::new(5)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stats_count() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
            .unwrap();
        s.fetch_since(Epoch::zero()).unwrap();
        let st = s.stats();
        assert_eq!(st.published, 2);
        assert_eq!(st.fetched, 2);
    }

    #[test]
    fn empty_fetch() {
        let s = InMemoryStore::new();
        assert!(s.fetch_since(Epoch::zero()).unwrap().is_empty());
    }
}
