//! The centralized in-memory archive.

use crate::api::{
    check_batch_ids, check_epoch_monotone, collect_page, index_epoch_ids, AtomicStats,
};
use crate::api::{AbsorbReport, FetchCursor, FetchPage, StoreDigest, StoreStats, UpdateStore};
use orchestra_updates::{Epoch, Transaction, TxnId};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Default)]
struct Inner {
    /// Epoch → txn ids, each epoch's list kept sorted (the paged scan
    /// order is `(epoch, id)`).
    by_epoch: BTreeMap<Epoch, Vec<TxnId>>,
    by_id: HashMap<TxnId, Transaction>,
}

/// A centralized, always-available archive — the reference implementation
/// and the store used by most tests and examples.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    inner: RwLock<Inner>,
    stats: AtomicStats,
}

impl InMemoryStore {
    /// An empty archive.
    pub fn new() -> Self {
        InMemoryStore::default()
    }
}

impl UpdateStore for InMemoryStore {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> crate::Result<()> {
        if txns.is_empty() {
            return Ok(()); // Vacuous: nothing a cursor could miss.
        }
        let mut inner = self.inner.write();
        check_batch_ids(&txns, |id| inner.by_id.contains_key(id))?;
        check_epoch_monotone(epoch, inner.by_epoch.keys().next_back().copied())?;
        let n = txns.len() as u64;
        let mut ids = Vec::with_capacity(txns.len());
        for mut t in txns {
            t.epoch = epoch;
            ids.push(t.id.clone());
            inner.by_id.insert(t.id.clone(), t);
        }
        index_epoch_ids(&mut inner.by_epoch, epoch, ids);
        self.stats.add_published(n);
        Ok(())
    }

    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> crate::Result<FetchPage> {
        let inner = self.inner.read();
        let (positions, next_cursor) = collect_page(&inner.by_epoch, cursor, limit);
        let txns: Vec<Transaction> = positions
            .iter()
            .map(|(_, id)| inner.by_id[id].clone())
            .collect();
        self.stats.add_fetched(txns.len() as u64);
        self.stats.add_pages(1);
        Ok(FetchPage {
            txns,
            unavailable: Vec::new(),
            next_cursor,
        })
    }

    fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>> {
        let inner = self.inner.read();
        let got = inner.by_id.get(id).cloned();
        if got.is_some() {
            self.stats.add_fetched(1);
        }
        Ok(got)
    }

    fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    fn latest_epoch(&self) -> Option<Epoch> {
        self.inner.read().by_epoch.keys().next_back().copied()
    }

    fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn digest(&self) -> crate::Result<StoreDigest> {
        // Walk the epoch index under one read lock, observing payloads in
        // place — no page materialization, no transaction clones.
        let inner = self.inner.read();
        let mut d = StoreDigest::default();
        for (_, ids) in inner.by_epoch.iter() {
            for id in ids {
                d.observe(&inner.by_id[id]);
            }
        }
        Ok(d)
    }

    fn absorb(&self, txns: Vec<Transaction>) -> crate::Result<AbsorbReport> {
        let mut inner = self.inner.write();
        let mut report = AbsorbReport::default();
        let mut per_epoch: BTreeMap<Epoch, Vec<TxnId>> = BTreeMap::new();
        for t in txns {
            // Keep the epoch the publisher stamped — an anti-entropy
            // merge preserves the global (epoch, id) order even when it
            // arrives out of epoch order.
            match inner.by_id.entry(t.id.clone()) {
                std::collections::hash_map::Entry::Occupied(_) => report.duplicates += 1,
                std::collections::hash_map::Entry::Vacant(v) => {
                    per_epoch.entry(t.epoch).or_default().push(t.id.clone());
                    v.insert(t);
                    report.absorbed += 1;
                }
            }
        }
        for (epoch, ids) in per_epoch {
            index_epoch_ids(&mut inner.by_epoch, epoch, ids);
        }
        self.stats.add_published(report.absorbed);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::StoreError;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, Update};

    fn txn(peer: &str, seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new(peer), seq),
            Epoch::zero(),
            vec![Update::insert("R", tuple![seq as i64])],
        )
    }

    #[test]
    fn publish_and_fetch_since() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 3);
        // Epochs stamp onto transactions.
        assert!(all.iter().all(|t| t.epoch >= Epoch::new(1)));
        let recent = s.fetch_since(Epoch::new(1)).unwrap();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].id, TxnId::new(PeerId::new("A"), 2));
    }

    #[test]
    fn fetch_order_is_deterministic() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1)])
            .unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all[0].id.peer.name(), "A");
        assert_eq!(all[1].id.peer.name(), "B");
    }

    #[test]
    fn duplicate_rejected_atomically() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let err = s.publish(Epoch::new(2), vec![txn("C", 1), txn("A", 1)]);
        assert!(matches!(err, Err(StoreError::DuplicateTxn(_))));
        // The batch failed atomically: C#1 was not archived.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn in_batch_duplicate_rejected() {
        let s = InMemoryStore::new();
        let err = s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 1)]);
        assert!(matches!(err, Err(StoreError::DuplicateTxn(_))));
        assert_eq!(s.len(), 0, "nothing archived");
        assert!(s.fetch_since(Epoch::zero()).unwrap().is_empty());
    }

    #[test]
    fn fetch_by_id() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let got = s.fetch(&TxnId::new(PeerId::new("A"), 1)).unwrap();
        assert!(got.is_some());
        assert!(s.fetch(&TxnId::new(PeerId::new("Z"), 9)).unwrap().is_none());
    }

    #[test]
    fn latest_epoch_and_len() {
        let s = InMemoryStore::new();
        assert!(s.is_empty());
        assert_eq!(s.latest_epoch(), None);
        s.publish(Epoch::new(3), vec![txn("A", 1)]).unwrap();
        s.publish(Epoch::new(5), vec![txn("A", 2)]).unwrap();
        assert_eq!(s.latest_epoch(), Some(Epoch::new(5)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stats_count() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
            .unwrap();
        s.fetch_since(Epoch::zero()).unwrap();
        let st = s.stats();
        assert_eq!(st.published, 2);
        assert_eq!(st.fetched, 2);
        assert!(st.pages >= 1, "paged scan counted");
    }

    #[test]
    fn empty_fetch() {
        let s = InMemoryStore::new();
        assert!(s.fetch_since(Epoch::zero()).unwrap().is_empty());
    }

    #[test]
    fn digest_summarizes_sources_and_relations() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1)])
            .unwrap();
        s.publish(Epoch::new(3), vec![txn("A", 2)]).unwrap();
        let d = s.digest().unwrap();
        assert_eq!(d.len, 3);
        assert_eq!(d.latest_epoch, Some(Epoch::new(3)));
        assert_eq!(d.source_hw("A"), 2);
        assert_eq!(d.source_hw("B"), 1);
        assert_eq!(d.source_hw("Z"), 0);
        assert_eq!(d.relation_txns("A.R"), 2);
        assert_eq!(d.relation_txns("B.R"), 1);
        assert_eq!(
            d.relations["A.R"].latest_epoch,
            Some(Epoch::new(3)),
            "relation epoch tracks the newest touch"
        );
        // The efficient override agrees with the trait's page-walk default.
        struct ViaDefault<'a>(&'a InMemoryStore);
        impl UpdateStore for ViaDefault<'_> {
            fn publish(&self, e: Epoch, t: Vec<Transaction>) -> crate::Result<()> {
                self.0.publish(e, t)
            }
            fn fetch_page(&self, c: &FetchCursor, l: usize) -> crate::Result<FetchPage> {
                self.0.fetch_page(c, l)
            }
            fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>> {
                self.0.fetch(id)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn latest_epoch(&self) -> Option<Epoch> {
                self.0.latest_epoch()
            }
            fn stats(&self) -> StoreStats {
                self.0.stats()
            }
        }
        assert_eq!(ViaDefault(&s).digest().unwrap(), d);
    }

    #[test]
    fn absorb_merges_out_of_order_epochs_and_dedups() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(5), vec![txn("A", 1)]).unwrap();
        // A gossip pull carrying older history plus an overlap.
        let mut old = txn("B", 1);
        old.epoch = Epoch::new(2);
        let mut dup = txn("A", 1);
        dup.epoch = Epoch::new(5);
        let mut newer = txn("B", 2);
        newer.epoch = Epoch::new(7);
        let r = s
            .absorb(vec![old.clone(), dup, newer.clone(), old.clone()])
            .unwrap();
        assert_eq!(r.absorbed, 2);
        assert_eq!(r.duplicates, 2);
        assert_eq!(s.len(), 3);
        // The merged archive scans in global (epoch, id) order.
        let all = s.fetch_since(Epoch::zero()).unwrap();
        let order: Vec<u64> = all.iter().map(|t| t.epoch.value()).collect();
        assert_eq!(order, vec![2, 5, 7]);
        assert_eq!(all[0].id, old.id);
        // publish stays epoch-monotone even after an absorb backfill.
        assert!(matches!(
            s.publish(Epoch::new(3), vec![txn("C", 1)]),
            Err(StoreError::StaleEpoch { .. })
        ));
    }

    #[test]
    fn fetch_page_walks_the_archive() {
        let s = InMemoryStore::new();
        s.publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
        let p1 = s
            .fetch_page(&FetchCursor::at_epoch(Epoch::zero()), 2)
            .unwrap();
        assert_eq!(p1.txns.len(), 2);
        assert_eq!(p1.txns[0].id.peer.name(), "A");
        assert!(p1.unavailable.is_empty());
        let p2 = s.fetch_page(&p1.next_cursor.unwrap(), 2).unwrap();
        assert_eq!(p2.txns.len(), 1);
        assert!(p2.next_cursor.is_none());
    }
}
