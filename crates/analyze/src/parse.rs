//! Light structural analysis over the token stream: function extents,
//! enclosing `impl` type names, and `#[cfg(test)]` / `#[test]` regions.
//!
//! This is deliberately not a parser — it recovers exactly the shape
//! the lints need (who owns this token? is it test code? what `Self`
//! type is in scope?) from brace matching plus attribute tracking, and
//! tolerates anything it does not understand by ignoring it.

use crate::lexer::{Lexed, Token, TokenKind};
use std::ops::Range;

/// A `fn` item found in the file.
#[derive(Debug)]
pub struct Func {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, *excluding* the outer braces.
    /// Empty for bodyless trait-method declarations.
    pub body: Range<usize>,
    /// Token index of the `fn` keyword (signature start).
    pub sig_start: usize,
    /// True when the function is test-only: `#[test]`, `#[cfg(test)]`,
    /// or lexically inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// The `impl` type name this method lives in, if any.
    pub impl_type: Option<String>,
}

/// Structural facts about one lexed file.
#[derive(Debug, Default)]
pub struct Structure {
    pub functions: Vec<Func>,
    /// Token-index ranges covered by `#[cfg(test)]` modules.
    pub test_spans: Vec<Range<usize>>,
    /// For each token index of a `{`, the index of its matching `}`.
    brace_match: Vec<(usize, usize)>,
}

impl Structure {
    /// Is the token at `idx` inside a `#[cfg(test)]` module?
    pub fn in_test_span(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&idx))
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&Func> {
        self.functions
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.len())
    }

    /// Matching `}` index for the `{` at `open`.
    pub fn close_of(&self, open: usize) -> Option<usize> {
        self.brace_match
            .iter()
            .find(|(o, _)| *o == open)
            .map(|(_, c)| *c)
    }
}

/// Is this ident a keyword that can precede `(` without being a call?
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "pub"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "mod"
            | "use"
            | "where"
            | "in"
            | "as"
            | "const"
            | "static"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "type"
            | "extern"
    )
}

/// Build the structural index for a lexed file.
pub fn structure(lexed: &Lexed<'_>) -> Structure {
    let toks = &lexed.tokens;
    let mut st = Structure::default();

    // Pass 1: brace matching.
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                stack.push(i);
            } else if t.text == "}" {
                if let Some(open) = stack.pop() {
                    st.brace_match.push((open, i));
                }
            }
        }
    }
    st.brace_match.sort_unstable();

    // Pass 2: walk items. `pending_attr` accumulates the text of
    // outer attributes since the last item token; impl/test scopes are
    // tracked with (close_idx, payload) stacks.
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut test_mod_stack: Vec<usize> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(close, _)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        while let Some(&close) = test_mod_stack.last() {
            if i > close {
                test_mod_stack.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.kind == TokenKind::Punct && t.text == "#" {
            // Attribute: `#[ … ]` (outer) or `#![ … ]` (inner; skipped
            // without recording).
            let inner = matches!(toks.get(i + 1), Some(n) if n.text == "!");
            let open = i + if inner { 2 } else { 1 };
            if matches!(toks.get(open), Some(n) if n.text == "[") {
                let mut depth = 0i32;
                let mut j = open;
                let mut text = String::new();
                while j < toks.len() {
                    match toks[j].text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        s => {
                            if !text.is_empty() {
                                text.push(' ');
                            }
                            text.push_str(s);
                        }
                    }
                    j += 1;
                }
                if !inner {
                    pending_attrs.push(text);
                }
                i = j + 1;
                continue;
            }
        }
        if t.kind == TokenKind::Ident {
            match t.text {
                "fn" => {
                    let attrs = std::mem::take(&mut pending_attrs);
                    let name = match toks.get(i + 1) {
                        Some(n) if n.kind == TokenKind::Ident => n.text.to_string(),
                        _ => {
                            i += 1;
                            continue;
                        }
                    };
                    // Find the body `{` or a trailing `;` at paren/
                    // bracket depth 0 (array types in params carry `;`).
                    let mut depth = 0i32;
                    let mut j = i + 2;
                    let mut body = 0..0;
                    while j < toks.len() {
                        match toks[j].text {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                let close = st.close_of(j).unwrap_or(toks.len());
                                body = (j + 1)..close;
                                break;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let attr_test = attrs.iter().any(|a| attr_marks_test(a));
                    st.functions.push(Func {
                        name,
                        line: t.line,
                        sig_start: i,
                        is_test: attr_test || !test_mod_stack.is_empty(),
                        impl_type: impl_stack.iter().rev().find_map(|(_, n)| n.clone()),
                        body: body.clone(),
                    });
                    // Continue scanning *inside* the body (nested fns,
                    // nested impls) — just step past the signature.
                    i = if body.start > 0 { body.start } else { j + 1 };
                    continue;
                }
                "mod" => {
                    let attrs = std::mem::take(&mut pending_attrs);
                    let is_test_mod = attrs.iter().any(|a| attr_marks_test(a));
                    // Find the `{` (inline mod) or `;` (file mod).
                    let mut j = i + 1;
                    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].text == "{" {
                        let close = st.close_of(j).unwrap_or(toks.len());
                        if is_test_mod {
                            st.test_spans.push(j..close + 1);
                            test_mod_stack.push(close);
                        }
                        i = j + 1;
                        continue;
                    }
                    i = j + 1;
                    continue;
                }
                "impl" => {
                    pending_attrs.clear();
                    if let Some((name, open)) = parse_impl_header(toks, i) {
                        if let Some(close) = st.close_of(open) {
                            impl_stack.push((close, name));
                        }
                        i = open + 1;
                        continue;
                    }
                }
                // Any other item keyword resets pending attributes so a
                // `#[derive(..)] struct` does not leak onto a later fn.
                "struct" | "enum" | "trait" | "use" | "static" | "const" | "type"
                | "macro_rules" => {
                    pending_attrs.clear();
                }
                _ => {}
            }
        }
        i += 1;
    }
    st
}

/// Does this flattened attribute text mark test-only code?
/// `test`, `cfg ( test )`, `cfg ( all ( test , … ) )` do;
/// `cfg ( not ( test ) )` does not.
fn attr_marks_test(attr: &str) -> bool {
    let has_test = attr == "test"
        || attr
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "test");
    has_test && !attr.contains("not")
}

/// Parse `impl … {`: returns (type name, index of the opening brace).
/// `impl<T> Foo<T>` → `Foo`; `impl Trait for Bar` → `Bar`;
/// `impl Display for wal::Wal` → `Wal`.
fn parse_impl_header(toks: &[Token<'_>], impl_idx: usize) -> Option<(Option<String>, usize)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        match t.text {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "{" if angle <= 0 => return Some((last_ident, j)),
            ";" => return None, // `impl Trait for Type;` — not a block
            "for" if angle <= 0 => last_ident = None,
            "where" if angle <= 0 => {
                // Type name is settled; scan on to the brace.
                while j < toks.len() && toks[j].text != "{" {
                    j += 1;
                }
                if j < toks.len() {
                    return Some((last_ident, j));
                }
                return None;
            }
            _ => {
                if t.kind == TokenKind::Ident && angle <= 0 && !is_keyword(t.text) {
                    last_ident = Some(t.text.to_string());
                }
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_with_impl_types() {
        let src = r#"
            impl<T: Clone> Holder<T> {
                pub fn get(&self) -> T { self.0.clone() }
            }
            impl std::fmt::Display for Wal {
                fn fmt(&self, f: &mut Formatter) -> Result { Ok(()) }
            }
            fn free(x: [u8; 4]) -> u8 { x[0] }
        "#;
        let l = lex(src);
        let st = structure(&l);
        assert_eq!(st.functions.len(), 3);
        assert_eq!(st.functions[0].name, "get");
        assert_eq!(st.functions[0].impl_type.as_deref(), Some("Holder"));
        assert_eq!(st.functions[1].name, "fmt");
        assert_eq!(st.functions[1].impl_type.as_deref(), Some("Wal"));
        assert_eq!(st.functions[2].name, "free");
        assert_eq!(st.functions[2].impl_type, None);
        assert!(!st.functions[2].body.is_empty());
    }

    #[test]
    fn cfg_test_modules_and_test_fns() {
        let src = r#"
            fn lib_code() {}
            #[test]
            fn standalone_test() {}
            #[cfg(test)]
            mod tests {
                use super::*;
                fn helper() {}
                #[test]
                fn inner() {}
            }
            fn after() {}
        "#;
        let l = lex(src);
        let st = structure(&l);
        let by_name = |n: &str| st.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib_code").is_test);
        assert!(by_name("standalone_test").is_test);
        assert!(by_name("helper").is_test, "fns in cfg(test) mods are test");
        assert!(by_name("inner").is_test);
        assert!(!by_name("after").is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))] fn prod() {}";
        let st = structure(&lex(src));
        assert!(!st.functions[0].is_test);
    }

    #[test]
    fn derive_attr_does_not_leak() {
        let src = "#[derive(Debug)] struct S; fn f() {}";
        let st = structure(&lex(src));
        assert!(!st.functions[0].is_test);
    }

    #[test]
    fn trait_method_without_body() {
        let src = "trait T { fn req(&self); fn has(&self) { () } }";
        let st = structure(&lex(src));
        assert_eq!(st.functions.len(), 2);
        assert!(st.functions[0].body.is_empty());
        assert!(!st.functions[1].body.is_empty());
    }

    #[test]
    fn nested_fn_seen() {
        let src = "fn outer() { fn inner() {} inner(); }";
        let st = structure(&lex(src));
        assert_eq!(st.functions.len(), 2);
        let outer = st.functions.iter().find(|f| f.name == "outer").unwrap();
        let inner = st.functions.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.body.contains(&inner.sig_start));
    }
}
