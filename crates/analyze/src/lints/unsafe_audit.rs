//! `unsafe` lint: every `unsafe` occurrence in library code must be
//! within reach of a `// SAFETY:` comment (or, for `unsafe fn`, a
//! `# Safety` doc section) stating the obligation being discharged.
//! The lifetime-erased jobs in `relational/src/exec.rs` are exactly the
//! kind of transmute whose justification must live next to the code.

use crate::context::ParsedFile;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;

/// How many lines above the `unsafe` token a SAFETY comment may sit
/// (attributes or a `let` binding line may intervene), and how far
/// into the block it may lead.
const ABOVE: u32 = 6;
const BELOW: u32 = 2;

pub fn run(files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for pf in files {
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "unsafe" || pf.is_test_code(i) {
                continue;
            }
            let next = toks.get(i + 1).map(|n| n.text).unwrap_or("");
            // `unsafe` in a fn-pointer/trait-bound type position
            // (`unsafe fn()` as a type) still deserves scrutiny, so no
            // attempt to distinguish — but only the *first* token of an
            // `unsafe fn` item should anchor, not every keyword.
            let documented = pf.lexed.comments.iter().any(|c| {
                let satisfies = c.text.contains("SAFETY:") || c.text.contains("# Safety");
                satisfies && c.line + ABOVE >= t.line && c.line <= t.line + BELOW
            });
            if !documented {
                let what = if next == "fn" {
                    "`unsafe fn` without a `# Safety` doc section or `// SAFETY:` comment"
                } else if next == "impl" {
                    "`unsafe impl` without a `// SAFETY:` comment justifying the contract"
                } else {
                    "`unsafe` block without a `// SAFETY:` comment justifying it"
                };
                out.push(pf.finding(LintId::Unsafe, t.line, what));
            }
        }
    }
    out
}
