//! `panic` lint: panic-freedom for library code.
//!
//! A panic in library code tears through every invariant this codebase
//! stakes its correctness on — a poisoned WAL half-write, a server
//! worker that dies mid-connection, an evaluation lane that takes the
//! whole pool down. The lint flags, in non-test non-bench library
//! code:
//!
//! * `.unwrap()` / `.expect(..)` method calls;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros;
//! * subscript indexing (`buf[i]`, `&buf[a..b]`) — but only inside the
//!   **panic-critical modules** (the durable store, the shared frame
//!   codec, and the network stack), where the input is untrusted bytes
//!   or a torn file and a bounds panic is a crash where an error was
//!   owed. Elsewhere indexing is pervasive and invariant-guarded
//!   (dense `Sym`/`NodeId` tables), so it is not flagged.
//!
//! Escape hatch: `// analyze: allow(panic) -- <why this cannot fire>`.

use crate::context::ParsedFile;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;

/// Path prefixes where subscript indexing is also flagged: code that
/// parses bytes from disk or the wire.
const INDEX_CRITICAL: &[&str] = &[
    "crates/store/src/durable/",
    "crates/store/src/frame.rs",
    "crates/net/src/",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn run(files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for pf in files {
        let rel = &pf.entry.rel_path;
        let index_critical = INDEX_CRITICAL.iter().any(|p| rel.starts_with(p));
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if pf.is_test_code(i) {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| toks[j].text).unwrap_or("");
            let next = toks.get(i + 1).map(|n| n.text).unwrap_or("");
            if t.kind == TokenKind::Ident {
                let flagged = match t.text {
                    "unwrap" | "expect" if prev == "." && next == "(" => Some(format!(
                        "`.{}()` in library code — propagate the error instead, or annotate why it cannot fire",
                        t.text
                    )),
                    m if PANIC_MACROS.contains(&m) && next == "!" => Some(format!(
                        "`{m}!` in library code — return an error instead, or annotate why this is unreachable",
                    )),
                    _ => None,
                };
                if let Some(message) = flagged {
                    out.push(pf.finding(LintId::Panic, t.line, message));
                }
            } else if index_critical && t.kind == TokenKind::Punct && t.text == "[" {
                // Subscript: `[` directly after an expression tail.
                // `#[attr]`, `vec![..]`, types `[u8; 4]`, and slice
                // patterns all have a non-expression token before the
                // bracket.
                let is_subscript = i > 0 && {
                    let p = &toks[i - 1];
                    match p.kind {
                        TokenKind::Ident => !crate::parse::is_keyword(p.text),
                        TokenKind::Punct => p.text == ")" || p.text == "]",
                        _ => false,
                    }
                };
                if is_subscript {
                    out.push(
                        pf.finding(
                            LintId::Panic,
                            t.line,
                            "indexing in a byte-parsing/recovery path can panic on torn input — \
                         use `get()`/length checks, or annotate the guard"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
    out
}
