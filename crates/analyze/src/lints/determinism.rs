//! `determinism` lint: byte-identical results at any thread count is a
//! headline guarantee (engine merges, provenance recording order,
//! durable bytes on disk). `HashMap`/`HashSet` iteration order is
//! unspecified, so iterating one inside a merge/drain/serialize
//! function of a determinism-critical module silently couples output
//! to hasher state — unless the iteration feeds a sort or an
//! order-insensitive sink.
//!
//! Heuristics, by construction of the token-level scanner:
//!
//! * hash-container names are collected from field/param/local
//!   declarations and `HashMap::new()`-style initializers in the same
//!   file;
//! * an iteration is exempt when its own statement chain sorts
//!   (`.sort*`), reduces order-insensitively (`.sum`/`.count`/`.min`/
//!   `.max`/`.all`/`.any`/`.fold` into a commutative op is on the
//!   author to annotate), or collects into an ordered container
//!   (`BTreeMap`/`BTreeSet`/`BinaryHeap`);
//! * everything else needs `// analyze: allow(determinism) -- <why
//!   order cannot leak>`.

use crate::context::ParsedFile;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Determinism-critical modules (workspace-relative path prefixes).
const CRITICAL: &[&str] = &[
    "crates/datalog/src/engine.rs",
    "crates/datalog/src/merge.rs",
    "crates/datalog/src/node.rs",
    "crates/datalog/src/provgraph.rs",
    "crates/provenance/src/",
    "crates/store/src/durable/",
];

/// Function-name fragments that mark order-sensitive work.
const FN_MARKERS: &[&str] = &[
    "merge",
    "drain",
    "serialize",
    "encode",
    "snapshot",
    "flush",
    "write",
    "emit",
];

/// Iteration methods whose order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Chain members that make hash order harmless within the statement.
const ORDER_SINKS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sum",
    "count",
    "min",
    "max",
    "all",
    "any",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

pub fn run(files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for pf in files {
        let rel = &pf.entry.rel_path;
        if !CRITICAL.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let toks = &pf.lexed.tokens;
        let hash_names = collect_hash_names(pf);
        for f in &pf.structure.functions {
            if f.is_test || f.body.is_empty() {
                continue;
            }
            let lname = f.name.to_lowercase();
            if !FN_MARKERS.iter().any(|m| lname.contains(m)) {
                continue;
            }
            for i in f.body.clone() {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || !hash_names.contains(t.text) {
                    continue;
                }
                // Form 1: `name.iter()` / `.keys()` / `.drain()` …
                let method_iter = toks.get(i + 1).map(|n| n.text) == Some(".")
                    && toks
                        .get(i + 2)
                        .map(|n| ITER_METHODS.contains(&n.text))
                        .unwrap_or(false)
                    && toks.get(i + 3).map(|n| n.text) == Some("(");
                // Form 2: `for pat in name {` / `for pat in &name {`
                let for_iter = {
                    let mut j = i;
                    // Step back over `&` / `&mut`.
                    while j > 0 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
                        j -= 1;
                    }
                    j > 0
                        && toks[j - 1].text == "in"
                        && toks.get(i + 1).map(|n| n.text) == Some("{")
                };
                if !(method_iter || for_iter) {
                    continue;
                }
                if method_iter && statement_is_order_safe(pf, i) {
                    continue;
                }
                out.push(pf.finding(
                    LintId::Determinism,
                    t.line,
                    format!(
                        "iteration over hash container `{}` in determinism-critical `{}` — \
                         hash order is unspecified; sort first, use a BTree container, or \
                         annotate the order-insensitive sink",
                        t.text, f.name
                    ),
                ));
            }
        }
    }
    out
}

/// Scan forward from the iteration to the end of its statement; exempt
/// if the chain hits a sorting/reducing sink.
fn statement_is_order_safe(pf: &ParsedFile<'_>, start: usize) -> bool {
    let toks = &pf.lexed.tokens;
    let mut depth = 0i32;
    for t in toks.iter().skip(start) {
        match t.text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" if depth == 0 => return false,
            s if ORDER_SINKS.contains(&s) => return true,
            _ => {}
        }
    }
    false
}

/// Names declared or initialized as `HashMap`/`HashSet` anywhere in the
/// file (fields, params, locals). One namespace per file is coarse but
/// errs toward flagging.
fn collect_hash_names<'t>(pf: &'t ParsedFile<'_>) -> BTreeSet<&'t str> {
    let toks = &pf.lexed.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let before = toks[j - 1].text;
        if before == ":" && j >= 2 {
            // `name : HashMap<..>` — field, param, or typed local.
            if toks[j - 2].kind == TokenKind::Ident {
                names.insert(toks[j - 2].text);
            }
        } else if before == "&" || before == "mut" {
            // `name : & mut HashMap<..>` — step back to the colon.
            let mut k = j - 1;
            while k > 0 && (toks[k - 1].text == "&" || toks[k - 1].text == "mut") {
                k -= 1;
            }
            if k >= 2 && toks[k - 1].text == ":" && toks[k - 2].kind == TokenKind::Ident {
                names.insert(toks[k - 2].text);
            }
        } else if before == "=" && j >= 2 {
            // `let [mut] name = HashMap::new()`.
            if toks[j - 2].kind == TokenKind::Ident {
                names.insert(toks[j - 2].text);
            }
        }
    }
    names
}
