//! `lock-order` lint: deadlock candidates from inconsistent lock
//! acquisition order.
//!
//! The workspace nests locks across many layers — `ReplicatedStore`'s
//! holder registry, the `WorkerPool` queue, `MeshNode` neighbor lists,
//! `PeerServer` connection tables — and nothing but discipline keeps
//! thread A from taking `X` then `Y` while thread B takes `Y` then
//! `X`. This lint recovers that discipline mechanically:
//!
//! * **Acquisitions.** `.lock()` / `.read()` / `.write()` calls *with
//!   no arguments* (the shim/std lock API shape — `io::Read::read`
//!   takes a buffer and is skipped) on a resolvable receiver:
//!   `self.field` chains (keyed `Type.field` by the enclosing impl),
//!   `SCREAMING_CASE` statics, and locals/params whose declared type
//!   is known (keyed through that type). Unresolvable receivers are
//!   skipped — the annotation hatch covers hand-known cases.
//! * **Hold tracking.** A `let`-bound guard is held to the end of its
//!   enclosing block (or an explicit `drop(guard)`); a temporary is
//!   held to the end of its statement. Acquiring `B` while `A` is held
//!   adds the edge `A → B`.
//! * **Call edges.** While a lock is held, calls to functions whose
//!   name resolves *uniquely inside the same crate* contribute edges
//!   to every lock that callee (transitively) acquires.
//! * **Cycles.** Strongly connected components of the edge graph with
//!   more than one lock — or a self-edge (re-acquiring a held lock) —
//!   are reported as deadlock candidates, with one representative
//!   acquisition site per edge.
//!
//! An `// analyze: allow(lock-order) -- reason` on an acquisition or
//! call line suppresses the edges that site contributes.

use crate::context::ParsedFile;
use crate::findings::{Finding, LintId};
use crate::lexer::{Token, TokenKind};
use crate::parse::{is_keyword, Func};
use std::collections::{BTreeMap, BTreeSet};

/// One lock-acquisition edge: `from` held while `to` acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    note: String,
}

#[derive(Debug, Clone)]
enum Release {
    /// Temporary guard: released at the end of the statement.
    StmtEnd,
    /// `let`-bound guard: released when the block at `depth` closes.
    BlockEnd(i32),
}

#[derive(Debug, Clone)]
struct Held {
    key: String,
    release: Release,
    /// Binding name for `drop(name)` release, when `let`-bound.
    binding: Option<String>,
}

/// Ubiquitous std method names: a bare `.len()` on a guard or buffer
/// must not resolve to a same-named crate method (`RemoteStore::len`
/// locks the pool; `Vec::len` does not). Call edges through these
/// names are never drawn.
const STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "get",
    "get_mut",
    "remove",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "take",
    "replace",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "default",
];

fn callee_resolvable(name: &str) -> bool {
    !STD_METHODS.contains(&name)
}

/// Per-function facts for the call-edge closure.
#[derive(Debug, Default)]
struct FnFacts {
    /// Locks acquired directly in this function (any position).
    direct: BTreeSet<String>,
    /// Callee names invoked anywhere in this function.
    callees: BTreeSet<String>,
}

pub fn run(files: &[ParsedFile<'_>]) -> Vec<Finding> {
    // Group library files per crate: call edges resolve intra-crate.
    let mut crates: BTreeMap<&str, Vec<&ParsedFile<'_>>> = BTreeMap::new();
    for pf in files {
        crates.entry(&pf.entry.crate_name).or_default().push(pf);
    }

    let mut edges: Vec<Edge> = Vec::new();
    for files in crates.values() {
        collect_crate_edges(files, &mut edges);
    }
    edges.sort();
    edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);

    report_cycles(&edges)
}

/// Scan one crate: direct nesting edges plus call-closure edges.
fn collect_crate_edges(files: &[&ParsedFile<'_>], edges: &mut Vec<Edge>) {
    // Pass A: per-function direct locks + callees; direct nesting
    // edges and held-at-call records.
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    // Function name → number of definitions (for unique resolution).
    let mut def_count: BTreeMap<&str, usize> = BTreeMap::new();
    for pf in files {
        for f in &pf.structure.functions {
            if !f.is_test {
                *def_count.entry(f.name.as_str()).or_default() += 1;
            }
        }
    }
    // (held lock, callee, site) records to expand after the closure.
    let mut call_records: Vec<(String, String, String, u32)> = Vec::new();

    for pf in files {
        for f in &pf.structure.functions {
            if f.is_test || f.body.is_empty() {
                continue;
            }
            let mut ff = FnFacts::default();
            scan_function(pf, f, edges, &mut ff, &mut call_records);
            // Multiple fns may share a name; merge facts conservatively.
            let entry = facts.entry(f.name.clone()).or_default();
            entry.direct.extend(ff.direct);
            entry.callees.extend(ff.callees);
        }
    }

    // Pass B: transitive lock closure per function, resolving callees
    // only when their name is defined exactly once in this crate.
    let mut closure: BTreeMap<String, BTreeSet<String>> = facts
        .iter()
        .map(|(k, v)| (k.clone(), v.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        let snapshot = closure.clone();
        for (name, ff) in &facts {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in &ff.callees {
                if callee_resolvable(callee) && def_count.get(callee.as_str()).copied() == Some(1) {
                    if let Some(locks) = snapshot.get(callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
            }
            let mine = closure.entry(name.clone()).or_default();
            for l in add {
                changed |= mine.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Pass C: expand call records into edges.
    for (held, callee, file, line) in call_records {
        if !callee_resolvable(&callee) || def_count.get(callee.as_str()).copied() != Some(1) {
            continue;
        }
        if let Some(locks) = closure.get(&callee) {
            for to in locks {
                edges.push(Edge {
                    from: held.clone(),
                    to: to.clone(),
                    file: file.clone(),
                    line,
                    note: format!("via call to `{callee}`"),
                });
            }
        }
    }
}

/// Walk one function body tracking held locks.
fn scan_function(
    pf: &ParsedFile<'_>,
    f: &Func,
    edges: &mut Vec<Edge>,
    ff: &mut FnFacts,
    call_records: &mut Vec<(String, String, String, u32)>,
) {
    let toks = &pf.lexed.tokens;
    let params = param_types(toks, f);
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = true; // at a statement boundary
    let mut stmt_is_let = false;
    let mut let_binding: Option<String> = None;

    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];
        match t.text {
            "{" => {
                depth += 1;
                stmt_start = true;
                i += 1;
                continue;
            }
            "}" => {
                held.retain(|h| !matches!(h.release, Release::BlockEnd(d) if d >= depth));
                depth -= 1;
                held.retain(|h| !matches!(h.release, Release::StmtEnd));
                stmt_start = true;
                i += 1;
                continue;
            }
            ";" => {
                held.retain(|h| !matches!(h.release, Release::StmtEnd));
                stmt_start = true;
                stmt_is_let = false;
                let_binding = None;
                i += 1;
                continue;
            }
            _ => {}
        }
        if t.kind == TokenKind::Ident {
            if stmt_start {
                stmt_is_let = t.text == "let";
                let_binding = None;
                stmt_start = false;
                if stmt_is_let {
                    // Binding name: first ident after `let` (skipping
                    // `mut`); destructuring patterns leave it None.
                    let mut j = i + 1;
                    while j < f.body.end && toks[j].text == "mut" {
                        j += 1;
                    }
                    if j < f.body.end
                        && toks[j].kind == TokenKind::Ident
                        && !is_keyword(toks[j].text)
                    {
                        let_binding = Some(toks[j].text.to_string());
                    }
                    i += 1;
                    continue;
                }
            }
            // Explicit guard drop: `drop(name)`.
            if t.text == "drop" && toks.get(i + 1).map(|n| n.text) == Some("(") {
                if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                    held.retain(|h| h.binding.as_deref() != Some(name.text));
                }
                i += 3;
                continue;
            }
            // Acquisition: `.lock()` / `.read()` / `.write()` no-arg.
            let is_acq = matches!(t.text, "lock" | "read" | "write")
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text) == Some("(")
                && toks.get(i + 2).map(|n| n.text) == Some(")");
            if is_acq {
                if let Some(key) = receiver_key(toks, i - 1, f, &params) {
                    let line = t.line;
                    let suppressed = pf.allows.consume(LintId::LockOrder, line).is_some();
                    if !suppressed {
                        for h in &held {
                            edges.push(Edge {
                                from: h.key.clone(),
                                to: key.clone(),
                                file: pf.entry.rel_path.clone(),
                                line,
                                note: format!("`.{}()` in `{}`", t.text, f.name),
                            });
                        }
                        ff.direct.insert(key.clone());
                    }
                    // `let pooled = x.lock().pop();` binds the *chain
                    // result*, not the guard — the guard is a temporary
                    // dropped at the end of the statement. Only an
                    // unchained `let g = x.lock();` holds to block end.
                    let chained = toks.get(i + 3).map(|n| n.text) == Some(".");
                    let bound = stmt_is_let && !chained;
                    held.push(Held {
                        key,
                        release: if bound {
                            Release::BlockEnd(depth)
                        } else {
                            Release::StmtEnd
                        },
                        binding: if bound { let_binding.clone() } else { None },
                    });
                }
                i += 3;
                continue;
            }
            // Call: ident followed by `(`, not a macro, not a keyword.
            if !is_keyword(t.text)
                && toks.get(i + 1).map(|n| n.text) == Some("(")
                && !matches!(t.text, "lock" | "read" | "write" | "drop")
            {
                ff.callees.insert(t.text.to_string());
                if !held.is_empty() && !pf.allows.covers(LintId::LockOrder, t.line) {
                    for h in &held {
                        call_records.push((
                            h.key.clone(),
                            t.text.to_string(),
                            pf.entry.rel_path.clone(),
                            t.line,
                        ));
                    }
                } else if !held.is_empty() {
                    // Annotated call site: consume the allow.
                    pf.allows.consume(LintId::LockOrder, t.line);
                }
            }
        }
        stmt_start = false;
        i += 1;
    }
}

/// Resolve the receiver chain ending at the `.` before the acquisition
/// method into a stable lock key, or `None` when unresolvable.
fn receiver_key(
    toks: &[Token<'_>],
    dot_idx: usize,
    f: &Func,
    params: &BTreeMap<String, String>,
) -> Option<String> {
    // Walk back over `ident . ident . … `; stop at anything else.
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot_idx; // points at the `.` before lock/read/write
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokenKind::Ident {
            parts.push(prev.text);
            if j == 1 {
                break;
            }
            let before = &toks[j - 2];
            if before.text == "." {
                j -= 2;
                continue;
            }
            break;
        }
        // `)` / `]` / `::` chains (method-call receivers, indexing,
        // path statics) — only plain field chains resolve.
        if prev.text == "::" {
            // `Type :: STATIC . lock()` — take the static name alone.
            return parts
                .last()
                .filter(|p| is_screaming(p))
                .map(|p| (*p).to_string());
        }
        return None;
    }
    parts.reverse();
    match parts.split_first() {
        Some((&"self", rest)) if !rest.is_empty() => {
            let owner = f
                .impl_type
                .clone()
                .unwrap_or_else(|| format!("fn:{}", f.name));
            Some(format!("{owner}.{}", rest.join(".")))
        }
        Some((first, rest)) if is_screaming(first) && rest.is_empty() => Some((*first).to_string()),
        Some((first, rest)) => {
            // Local/param receiver: resolve through its declared type
            // when the function signature names one.
            let ty = params.get(*first)?;
            if rest.is_empty() {
                // `shared.lock()` where shared: &Mutex<..> — key the
                // param itself under its type.
                Some(format!("{ty}.{first}"))
            } else {
                Some(format!("{ty}.{}", rest.join(".")))
            }
        }
        None => None,
    }
}

fn is_screaming(s: &str) -> bool {
    s.len() > 1
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Parameter name → type name from a fn signature. Type name = the
/// *last* ident of the type tokens (innermost generic: `&Arc<Shared>`
/// → `Shared`).
fn param_types(toks: &[Token<'_>], f: &Func) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    // Signature tokens run from sig_start to body.start (or a bit
    // before; scanning the parens is enough).
    let mut i = f.sig_start;
    let end = if f.body.is_empty() {
        toks.len().min(f.sig_start + 256)
    } else {
        f.body.start
    };
    // Find the opening paren of the parameter list.
    while i < end && toks[i].text != "(" {
        i += 1;
    }
    if i >= end {
        return out;
    }
    let mut depth = 0i32;
    let mut current_name: Option<String> = None;
    let mut last_ty_ident: Option<String> = None;
    while i < end {
        let t = &toks[i];
        match t.text {
            "(" | "[" | "<" => depth += 1,
            // Nested generics close with a glued `>>` token.
            ">>" => depth -= 2,
            ")" | "]" | ">" => {
                depth -= 1;
                if depth == 0 {
                    if let (Some(n), Some(ty)) = (current_name.take(), last_ty_ident.take()) {
                        out.insert(n, ty);
                    }
                    break;
                }
            }
            "," if depth == 1 => {
                if let (Some(n), Some(ty)) = (current_name.take(), last_ty_ident.take()) {
                    out.insert(n, ty);
                }
            }
            ":" if depth == 1 => {
                // The ident just before a top-level `:` is the param
                // name (already captured in last_ty_ident).
                current_name = last_ty_ident.take();
            }
            _ => {
                if t.kind == TokenKind::Ident && !is_keyword(t.text) {
                    last_ty_ident = Some(t.text.to_string());
                }
            }
        }
        i += 1;
    }
    out
}

/// Find cycles (SCCs with >1 node, or self-edges) and render findings.
fn report_cycles(edges: &[Edge]) -> Vec<Finding> {
    let mut out = Vec::new();

    // Self-edges first: re-acquiring a lock already held.
    for e in edges {
        if e.from == e.to {
            out.push(Finding::new(
                LintId::LockOrder,
                &e.file,
                e.line,
                format!(
                    "lock `{}` acquired while already held ({}) — self-deadlock \
                     candidate (the shim mutexes are not reentrant)",
                    e.from, e.note
                ),
            ));
        }
    }

    // Tarjan SCC (iterative) over the lock graph.
    let mut nodes: Vec<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for e in edges {
        if e.from != e.to {
            adj[index_of[e.from.as_str()]].push(index_of[e.to.as_str()]);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    let sccs = tarjan(&adj);
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let members: Vec<&str> = scc.iter().map(|&i| nodes[i]).collect();
        // Representative sites: one edge per ordered pair inside the
        // SCC, listed so the report shows *where* each direction is
        // taken.
        let mut sites: Vec<String> = Vec::new();
        let mut anchor: Option<(&str, u32)> = None;
        for e in edges {
            if members.contains(&e.from.as_str()) && members.contains(&e.to.as_str()) {
                sites.push(format!(
                    "{} → {} at {}:{} ({})",
                    e.from, e.to, e.file, e.line, e.note
                ));
                if anchor.is_none() {
                    anchor = Some((e.file.as_str(), e.line));
                }
            }
        }
        let (file, line) = anchor.unwrap_or(("<workspace>", 0));
        out.push(Finding::new(
            LintId::LockOrder,
            file,
            line,
            format!(
                "lock-order cycle between {{{}}} — deadlock candidate; edges: {}",
                members.join(", "),
                sites.join("; ")
            ),
        ));
    }
    out
}

/// Iterative Tarjan strongly-connected components.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Explicit DFS stack: (node, child cursor).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}
