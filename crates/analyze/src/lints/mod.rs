//! The lint catalog. Each lint exposes a `run` over the parsed library
//! files (plus the workspace for the doc/coverage lints) and returns
//! raw findings; the driver in `lib.rs` applies allow-annotations and
//! assembles the report.

pub mod determinism;
pub mod doc_drift;
pub mod failpoints;
pub mod lock_order;
pub mod panic_free;
pub mod unsafe_audit;
