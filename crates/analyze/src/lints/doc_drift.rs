//! `doc-drift` lint: hand-maintained docs must mechanically match the
//! code they describe. Three contracts are enforced:
//!
//! 1. **Opcodes** — every `const OP_<NAME>: u8 = 0x..;` in
//!    `crates/net/src/proto.rs` has a row in the opcode table of
//!    `docs/wire-protocol.md` with the same value and name, and every
//!    table row corresponds to a real constant.
//! 2. **PROBE_OK server counters** — every field of `ServerCounters`
//!    is named in `docs/wire-protocol.md`, and the documented
//!    `N×uvarint` arity matches the struct's field count.
//! 3. **Failpoint sites** — every `orchestra_fault::check` site is
//!    listed (backtick-quoted, exact) in the site table of
//!    `docs/architecture.md`, and every site-shaped name in that doc
//!    exists in code.
//! 4. **Metric names** — every `obs::counter!/gauge!/histogram!` name
//!    registered in library code is cataloged (backtick-quoted) in
//!    `docs/observability.md`, and every metric-kind table row in that
//!    doc names a metric that exists in code. Rows with a `<…>`
//!    placeholder (dynamic names like `fault.fired.<site>`) are
//!    documentation-only and skipped in the reverse direction.
//!
//! Doc-side findings are anchored at the markdown line; code-side at
//! the constant/site. Drift findings are fixable by definition, so
//! they accept no `allow` in markdown — fix the doc or the code.

use crate::context::ParsedFile;
use crate::files::Workspace;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use crate::lints::failpoints::collect_sites;
use std::collections::BTreeMap;

const PROTO: &str = "crates/net/src/proto.rs";
const STORE_API: &str = "crates/store/src/api.rs";
const WIRE_DOC: &str = "docs/wire-protocol.md";
const ARCH_DOC: &str = "docs/architecture.md";
const OBS_DOC: &str = "docs/observability.md";

pub fn run(ws: &Workspace, files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(check_opcodes(ws, files));
    out.extend(check_counters(ws, files));
    out.extend(check_failpoint_table(ws, files));
    out.extend(check_metrics(ws, files));
    out
}

/// `const OP_<NAME>: u8 = 0x..;` constants from proto.rs.
fn opcode_consts(files: &[ParsedFile<'_>]) -> Vec<(String, u8, u32)> {
    let Some(pf) = files.iter().find(|p| p.entry.rel_path == PROTO) else {
        return Vec::new();
    };
    let toks = &pf.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && t.text.starts_with("OP_")
            && i >= 1
            && toks[i - 1].text == "const"
        {
            // const OP_X : u8 = <number> ;
            if let Some(num) = toks.get(i + 4).filter(|n| n.kind == TokenKind::Number) {
                if let Some(v) = parse_u8(num.text) {
                    out.push((t.text["OP_".len()..].to_string(), v, t.line));
                }
            }
        }
    }
    out
}

fn parse_u8(s: &str) -> Option<u8> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Opcode rows `| `0xNN` | … | NAME … |` from the wire doc.
fn opcode_rows(doc: &str) -> Vec<(String, u8, u32)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| a | b | c |` splits into ["", a, b, c, ""].
        if cells.len() < 4 {
            continue;
        }
        // Only the opcode table has a direction column; the ERR code
        // table also leads with hex values and must not be conflated.
        if !cells[2].contains('→') {
            continue;
        }
        let value_cell = cells[1].trim_matches('`');
        let Some(hex) = value_cell.strip_prefix("0x") else {
            continue;
        };
        let Ok(value) = u8::from_str_radix(hex, 16) else {
            continue;
        };
        // Opcode name: first word of the third cell (strip the `(v2)`
        // marker and backticks).
        let name = cells[3]
            .split_whitespace()
            .next()
            .unwrap_or("")
            .trim_matches('`')
            .to_string();
        if !name.is_empty() {
            out.push((name, value, idx as u32 + 1));
        }
    }
    out
}

fn check_opcodes(ws: &Workspace, files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let consts = opcode_consts(files);
    if consts.is_empty() {
        return out; // proto.rs absent or unparsable — nothing to sync.
    }
    let Some(doc) = ws.doc(WIRE_DOC) else {
        out.push(Finding::new(
            LintId::DocDrift,
            PROTO,
            consts[0].2,
            format!("`{WIRE_DOC}` is missing — the wire protocol must stay documented"),
        ));
        return out;
    };
    let rows = opcode_rows(&doc.src);
    let row_by_value: BTreeMap<u8, &(String, u8, u32)> = rows.iter().map(|r| (r.1, r)).collect();
    for (name, value, line) in &consts {
        match row_by_value.get(value) {
            None => out.push(Finding::new(
                LintId::DocDrift,
                PROTO,
                *line,
                format!(
                    "opcode `OP_{name}` (0x{value:02x}) has no row in the {WIRE_DOC} \
                     opcode table"
                ),
            )),
            Some((doc_name, _, doc_line)) if !doc_name.eq_ignore_ascii_case(name) => {
                out.push(Finding::new(
                    LintId::DocDrift,
                    WIRE_DOC,
                    *doc_line,
                    format!(
                        "opcode 0x{value:02x} is documented as `{doc_name}` but the code \
                         names it `OP_{name}`"
                    ),
                ))
            }
            _ => {}
        }
    }
    let const_values: BTreeMap<u8, &str> =
        consts.iter().map(|(n, v, _)| (*v, n.as_str())).collect();
    for (doc_name, value, doc_line) in &rows {
        if !const_values.contains_key(value) {
            out.push(Finding::new(
                LintId::DocDrift,
                WIRE_DOC,
                *doc_line,
                format!(
                    "documented opcode `{doc_name}` (0x{value:02x}) does not exist in \
                     {PROTO}"
                ),
            ));
        }
    }
    out
}

fn check_counters(ws: &Workspace, files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(doc) = ws.doc(WIRE_DOC) else {
        return out; // already reported by check_opcodes
    };
    // Both PROBE_OK counter lists: the store's stats block and the v2
    // server per-message-type counters.
    for (path, strukt) in [(PROTO, "ServerCounters"), (STORE_API, "StoreStats")] {
        let Some(pf) = files.iter().find(|p| p.entry.rel_path == path) else {
            continue;
        };
        let fields = struct_fields(pf, strukt);
        if fields.is_empty() {
            continue;
        }
        for (field, line) in &fields {
            if !doc.src.contains(field.as_str()) {
                out.push(Finding::new(
                    LintId::DocDrift,
                    path,
                    *line,
                    format!(
                        "PROBE_OK counter `{field}` ({strukt}) is not mentioned in \
                         {WIRE_DOC} — the counter list drifted"
                    ),
                ));
            }
        }
        let arity = format!("{}×uvarint", fields.len());
        if !doc.src.contains(&arity) {
            out.push(Finding::new(
                LintId::DocDrift,
                path,
                fields[0].1,
                format!(
                    "{strukt} has {} fields but {WIRE_DOC} never states the arity \
                     `{arity}` — the PROBE_OK body description drifted",
                    fields.len()
                ),
            ));
        }
    }
    out
}

/// Field names (with lines) of `struct <name> { … }` in a parsed file.
fn struct_fields(pf: &ParsedFile<'_>, name: &str) -> Vec<(String, u32)> {
    let toks = &pf.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != name || i == 0 || toks[i - 1].text != "struct" {
            continue;
        }
        // Find `{`, then collect `ident :` pairs at depth 1.
        let mut j = i + 1;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            return out;
        }
        let Some(close) = pf.structure.close_of(j) else {
            return out;
        };
        let mut depth = 0i32;
        for k in j..close {
            match toks[k].text {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                ":" if depth == 1 && toks[k - 1].kind == TokenKind::Ident => {
                    // Skip `::` path separators (lexed as one token, so
                    // a bare `:` here is a field/type separator).
                    out.push((toks[k - 1].text.to_string(), toks[k - 1].line));
                }
                _ => {}
            }
        }
        return out;
    }
    out
}

fn check_failpoint_table(ws: &Workspace, files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let sites = collect_sites(files);
    if sites.is_empty() {
        return out;
    }
    let Some(doc) = ws.doc(ARCH_DOC) else {
        out.push(Finding::new(
            LintId::DocDrift,
            &sites[0].file,
            sites[0].line,
            format!("`{ARCH_DOC}` is missing — failpoint sites must stay documented"),
        ));
        return out;
    };
    // Forward: each code site must appear backtick-quoted, exact.
    for s in &sites {
        let quoted = format!("`{}`", s.name);
        if !doc.src.contains(&quoted) {
            out.push(Finding::new(
                LintId::DocDrift,
                &s.file,
                s.line,
                format!(
                    "failpoint site `{}` is not listed in the {ARCH_DOC} site table \
                     (expected the exact backtick-quoted name)",
                    s.name
                ),
            ));
        }
    }
    // Reverse: site-shaped backtick-quoted names in the doc must exist.
    let known: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
    for (idx, line) in doc.src.lines().enumerate() {
        for cand in backtick_spans(line) {
            let site_shaped = cand.contains('.')
                && !cand.contains('/')
                && !cand.contains('=')
                && ["store.", "net.", "mesh."]
                    .iter()
                    .any(|p| cand.starts_with(p))
                && cand
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_');
            if site_shaped && !known.contains(&cand) {
                out.push(Finding::new(
                    LintId::DocDrift,
                    ARCH_DOC,
                    idx as u32 + 1,
                    format!(
                        "documented failpoint site `{cand}` does not exist in the code — \
                         remove the row or fix the name"
                    ),
                ));
            }
        }
    }
    out
}

/// A metric name registered in library code: `counter!("…")`,
/// `gauge!("…")`, `histogram!("…")`, `time_histogram!("…")`, or the
/// function-form registration `orchestra_obs::counter("…")` etc.
/// Test code and `test.`-prefixed names are harness-local and exempt.
fn collect_metric_names(files: &[ParsedFile<'_>]) -> Vec<(String, String, u32)> {
    const KINDS: [&str; 4] = ["counter", "gauge", "histogram", "time_histogram"];
    let mut out = Vec::new();
    for pf in files {
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || !KINDS.contains(&t.text) || pf.is_test_code(i) {
                continue;
            }
            // Macro form: `counter ! ( "name"` — possibly after an
            // `orchestra_obs ::` path. Function form: the registration
            // helpers, which require the `orchestra_obs ::` (or
            // `obs ::`) path so unrelated functions never match.
            let lit = if toks.get(i + 1).map(|n| n.text) == Some("!")
                && toks.get(i + 2).map(|n| n.text) == Some("(")
            {
                toks.get(i + 3)
            } else if toks.get(i + 1).map(|n| n.text) == Some("(")
                && i >= 2
                && toks[i - 1].text == "::"
                && matches!(toks[i - 2].text, "orchestra_obs" | "obs")
            {
                toks.get(i + 2)
            } else {
                None
            };
            let Some(lit) = lit.filter(|n| n.kind == TokenKind::Str) else {
                continue;
            };
            let name = lit.text.trim_matches('"').to_string();
            if name.starts_with("test.") {
                continue;
            }
            out.push((name, pf.entry.rel_path.clone(), t.line));
        }
    }
    out
}

fn check_metrics(ws: &Workspace, files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let names = collect_metric_names(files);
    if names.is_empty() {
        return out; // No instrumented code — nothing to catalog.
    }
    let Some(doc) = ws.doc(OBS_DOC) else {
        out.push(Finding::new(
            LintId::DocDrift,
            &names[0].1,
            names[0].2,
            format!("`{OBS_DOC}` is missing — registered metrics must stay cataloged"),
        ));
        return out;
    };
    // Forward: every registered name appears backtick-quoted, exact.
    for (name, file, line) in &names {
        let quoted = format!("`{name}`");
        if !doc.src.contains(&quoted) {
            out.push(Finding::new(
                LintId::DocDrift,
                file,
                *line,
                format!(
                    "metric `{name}` is not cataloged in {OBS_DOC} — add it to the \
                     metric table (backtick-quoted, exact)"
                ),
            ));
        }
    }
    // Reverse: every metric-kind row of the catalog table names a
    // metric that exists in code. Only rows whose second cell is a
    // metric kind are considered, so span names and prose stay exempt;
    // `<…>` placeholder rows document dynamic names and are skipped.
    let known: Vec<&str> = names.iter().map(|(n, _, _)| n.as_str()).collect();
    for (idx, line) in doc.src.lines().enumerate() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 4 || !matches!(cells[2], "counter" | "gauge" | "histogram") {
            continue;
        }
        let name = cells[1].trim_matches('`');
        if name.is_empty() || name.contains('<') {
            continue;
        }
        if !known.contains(&name) {
            out.push(Finding::new(
                LintId::DocDrift,
                OBS_DOC,
                idx as u32 + 1,
                format!(
                    "cataloged metric `{name}` is not registered anywhere in library \
                     code — remove the row or fix the name"
                ),
            ));
        }
    }
    out
}

/// Backtick-quoted spans in a markdown line.
fn backtick_spans(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(&after[..close]);
        rest = &after[close + 1..];
    }
    out
}
