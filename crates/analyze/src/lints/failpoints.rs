//! `failpoint` lint: conformance for `orchestra_fault` injection sites.
//!
//! The fault framework's value rests on site names being stable,
//! unique handles: the env grammar addresses sites by string, the docs
//! table is the operator's catalog, and an unexercised site is a fault
//! path nobody has ever actually fired. Checks:
//!
//! 1. every `orchestra_fault::check("site")` string in library code is
//!    unique across the workspace (two sites sharing a name would fire
//!    on one rule indistinguishably);
//! 2. every site is exercised somewhere: a test, the bench/experiment
//!    harness (E13's fault storm), or a CI fault-matrix spec.
//!
//! Site ↔ docs-table sync lives in the `doc-drift` lint; this one owns
//! the code-side invariants.

use crate::context::ParsedFile;
use crate::files::{FileKind, Workspace};
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// A failpoint site found in library code.
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    pub file: String,
    pub line: u32,
}

/// Extract all `orchestra_fault::check("…")` sites from parsed library
/// files. Shared with the doc-drift lint.
pub fn collect_sites(files: &[ParsedFile<'_>]) -> Vec<Site> {
    let mut sites = Vec::new();
    for pf in files {
        let toks = &pf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "check" {
                continue;
            }
            // Match `orchestra_fault :: check ( "site" )` (or the
            // `fault::check` alias after a `use … as fault`).
            let is_fault_path = i >= 2
                && toks[i - 1].text == "::"
                && matches!(toks[i - 2].text, "orchestra_fault" | "fault");
            if !is_fault_path || pf.is_test_code(i) {
                continue;
            }
            if toks.get(i + 1).map(|n| n.text) != Some("(") {
                continue;
            }
            let Some(lit) = toks.get(i + 2).filter(|n| n.kind == TokenKind::Str) else {
                continue;
            };
            let name = lit.text.trim_matches('"').to_string();
            sites.push(Site {
                name,
                file: pf.entry.rel_path.clone(),
                line: t.line,
            });
        }
    }
    sites
}

pub fn run(ws: &Workspace, files: &[ParsedFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let sites = collect_sites(files);

    // 1. Uniqueness.
    let mut by_name: BTreeMap<&str, Vec<&Site>> = BTreeMap::new();
    for s in &sites {
        by_name.entry(&s.name).or_default().push(s);
    }
    for (name, occurrences) in &by_name {
        for dup in &occurrences[1..] {
            out.push(Finding::new(
                LintId::Failpoint,
                &dup.file,
                dup.line,
                format!(
                    "failpoint site `{name}` is also registered at {}:{} — site names \
                     must be unique so env rules address exactly one injection point",
                    occurrences[0].file, occurrences[0].line
                ),
            ));
        }
    }

    // 2. Exercised: the site string appears in test code, the bench
    //    harness, or a CI workflow (fault-matrix spec).
    for (name, occurrences) in &by_name {
        // Plain substring: specs embed sites in rule strings
        // (`"store.wal.fsync=err@1"`), so quote-delimited matching
        // would miss them.
        let in_tests = ws
            .files
            .iter()
            .any(|f| matches!(f.kind, FileKind::Test | FileKind::Bench) && f.src.contains(name));
        let in_inline_tests = files.iter().any(|pf| {
            // A `#[cfg(test)]` module in the defining crate counts.
            pf.lexed.tokens.iter().enumerate().any(|(i, t)| {
                t.kind == TokenKind::Str && t.text.contains(name) && pf.is_test_code(i)
            })
        });
        let in_ci = ws
            .docs
            .iter()
            .filter(|d| d.rel_path.starts_with(".github/"))
            .any(|d| d.src.contains(name));
        if !(in_tests || in_inline_tests || in_ci) {
            let s = occurrences[0];
            out.push(Finding::new(
                LintId::Failpoint,
                &s.file,
                s.line,
                format!(
                    "failpoint site `{name}` is never exercised — no test, bench \
                     harness, or CI fault-matrix spec mentions it; an untested fault \
                     path is an untested recovery path"
                ),
            ));
        }
    }
    out
}
