//! Per-file analysis context handed to each lint: the file entry, its
//! token stream, structural index, and annotation table.

use crate::files::FileEntry;
use crate::findings::{AllowTable, Finding, LintId};
use crate::lexer::Lexed;
use crate::parse::Structure;

/// One library file, lexed and indexed, ready for linting.
pub struct ParsedFile<'a> {
    pub entry: &'a FileEntry,
    pub lexed: Lexed<'a>,
    pub structure: Structure,
    pub allows: AllowTable,
}

impl<'a> ParsedFile<'a> {
    /// Is the token at `idx` test-only code (inside a `#[cfg(test)]`
    /// module or a `#[test]` function)?
    pub fn is_test_code(&self, idx: usize) -> bool {
        if self.structure.in_test_span(idx) {
            return true;
        }
        matches!(self.structure.enclosing_fn(idx), Some(f) if f.is_test)
    }

    /// Build a finding against this file.
    pub fn finding(&self, lint: LintId, line: u32, message: impl Into<String>) -> Finding {
        Finding::new(lint, &self.entry.rel_path, line, message)
    }
}
