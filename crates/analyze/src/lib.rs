//! # orchestra-analyze
//!
//! A dependency-free workspace invariant linter. The codebase stakes
//! its correctness on rules no compiler checks — byte-identical
//! evaluation at any thread count, witness-after-absorb ordering,
//! unique documented failpoint sites, a hand-maintained wire spec —
//! and this crate turns those tribal rules into CI-gated checks: a
//! hand-rolled token-level Rust scanner (crates.io is unreachable, so
//! no `syn`) plus six lints.
//!
//! | lint id | invariant |
//! |---------|-----------|
//! | `lock-order` | no cyclic lock-acquisition order (deadlock candidates) |
//! | `failpoint` | fault-injection sites unique and exercised |
//! | `doc-drift` | opcode / counter / failpoint tables match the docs |
//! | `panic` | no unwrap/expect/panic (or unchecked indexing in byte-parsing paths) in library code |
//! | `unsafe` | every `unsafe` carries a `// SAFETY:` justification |
//! | `determinism` | no hash-order iteration in determinism-critical merge/serialize paths |
//!
//! Any finding can be waived in place with
//! `// analyze: allow(<lint>) -- <reason>`; unannotated findings fail
//! the run (exit 1). Torn or stale annotations are themselves
//! findings (`bad-annotation`). See `docs/static-analysis.md`.

pub mod context;
pub mod files;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod report;

use context::ParsedFile;
use files::{FileKind, Workspace};
use findings::{Finding, LintId};
use report::Report;
use std::path::Path;

/// Which lints to run (all by default).
#[derive(Debug, Clone)]
pub struct Options {
    pub lints: Vec<LintId>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            lints: LintId::ALL.to_vec(),
        }
    }
}

/// Run the analyzer over the workspace at `root`.
pub fn analyze(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let ws = files::load_workspace(root)?;
    Ok(analyze_workspace(&ws, opts))
}

/// Run the analyzer over an already-loaded workspace (fixture tests
/// build synthetic ones).
pub fn analyze_workspace(ws: &Workspace, opts: &Options) -> Report {
    // Parse every library file once; the other roles are read as raw
    // text by the lints that need them (coverage evidence, docs).
    let parsed: Vec<ParsedFile<'_>> = ws
        .files
        .iter()
        .filter(|f| f.kind == FileKind::Lib)
        .map(|entry| {
            let lexed = lexer::lex(&entry.src);
            let structure = parse::structure(&lexed);
            let allows = findings::scan_allows(&lexed);
            ParsedFile {
                entry,
                lexed,
                structure,
                allows,
            }
        })
        .collect();

    let mut findings: Vec<Finding> = Vec::new();
    let on = |l: LintId| opts.lints.contains(&l);
    if on(LintId::LockOrder) {
        findings.extend(lints::lock_order::run(&parsed));
    }
    if on(LintId::Failpoint) {
        findings.extend(lints::failpoints::run(ws, &parsed));
    }
    if on(LintId::DocDrift) {
        findings.extend(lints::doc_drift::run(ws, &parsed));
    }
    if on(LintId::Panic) {
        findings.extend(lints::panic_free::run(&parsed));
    }
    if on(LintId::Unsafe) {
        findings.extend(lints::unsafe_audit::run(&parsed));
    }
    if on(LintId::Determinism) {
        findings.extend(lints::determinism::run(&parsed));
    }

    // Apply allow-annotations: a finding on an annotated line (for its
    // lint) is downgraded to `allowed` and the annotation is consumed.
    for f in &mut findings {
        if f.allowed.is_some() {
            continue;
        }
        if let Some(pf) = parsed.iter().find(|p| p.entry.rel_path == f.file) {
            if let Some(a) = pf.allows.consume(f.lint, f.line) {
                f.allowed = Some(a.reason.clone());
            }
        }
    }

    // Annotation hygiene: torn annotations and unused allows.
    if on(LintId::BadAnnotation) {
        for pf in &parsed {
            for (line, why) in &pf.allows.torn {
                findings.push(pf.finding(
                    LintId::BadAnnotation,
                    *line,
                    format!("torn `analyze:` annotation — {why}"),
                ));
            }
            for a in &pf.allows.allows {
                // An allow can only be judged stale when its lint ran:
                // under a `--lint` filter the other lints never got the
                // chance to consume their annotations.
                if on(a.lint) && !a.used.get() {
                    findings.push(pf.finding(
                        LintId::BadAnnotation,
                        a.comment_line,
                        format!(
                            "unused `allow({})` — nothing on line {} triggers this lint \
                             anymore; remove the stale annotation",
                            a.lint, a.target_line
                        ),
                    ));
                }
            }
        }
    }

    let mut report = Report {
        findings,
        files_scanned: parsed.len(),
    };
    report.finalize();
    report
}
