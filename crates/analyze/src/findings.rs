//! Finding and lint-id types shared by every lint, plus the
//! `// analyze: allow(..)` annotation table for one file.

use crate::lexer::Lexed;
use std::cell::Cell;
use std::fmt;

/// Stable lint identifiers — these appear in annotations, CLI filters,
/// JSON output, and docs, so renaming one is a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    LockOrder,
    Failpoint,
    DocDrift,
    Panic,
    Unsafe,
    Determinism,
    /// Meta-lint: torn/unknown/unused `analyze:` annotations. Not
    /// allowable (an annotation cannot vouch for itself).
    BadAnnotation,
}

impl LintId {
    pub const ALL: [LintId; 7] = [
        LintId::LockOrder,
        LintId::Failpoint,
        LintId::DocDrift,
        LintId::Panic,
        LintId::Unsafe,
        LintId::Determinism,
        LintId::BadAnnotation,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            LintId::LockOrder => "lock-order",
            LintId::Failpoint => "failpoint",
            LintId::DocDrift => "doc-drift",
            LintId::Panic => "panic",
            LintId::Unsafe => "unsafe",
            LintId::Determinism => "determinism",
            LintId::BadAnnotation => "bad-annotation",
        }
    }

    pub fn parse(s: &str) -> Option<LintId> {
        LintId::ALL.iter().copied().find(|l| l.as_str() == s)
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: LintId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when an `analyze: allow` annotation covers the
    /// finding — it is then reported but does not fail the run.
    pub allowed: Option<String>,
}

impl Finding {
    pub fn new(lint: LintId, file: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message: message.into(),
            allowed: None,
        }
    }
}

/// A parsed `// analyze: allow(<lint>) -- <reason>` annotation.
#[derive(Debug)]
pub struct Allow {
    pub lint: LintId,
    pub reason: String,
    /// The code line the annotation vouches for: its own line for a
    /// trailing annotation, the next code line for an own-line one.
    pub target_line: u32,
    /// Line the annotation comment itself sits on.
    pub comment_line: u32,
    /// Set when a finding (or a lint's internal suppression) consumed
    /// this allow; unconsumed allows become `bad-annotation` findings
    /// so stale annotations cannot rot in place.
    pub used: Cell<bool>,
}

/// Annotation scan result for one file.
#[derive(Debug, Default)]
pub struct AllowTable {
    pub allows: Vec<Allow>,
    /// Malformed annotations, reported as `bad-annotation`.
    pub torn: Vec<(u32, String)>,
}

impl AllowTable {
    /// Look up (and mark used) an allow covering `lint` at `line`.
    pub fn consume(&self, lint: LintId, line: u32) -> Option<&Allow> {
        let hit = self
            .allows
            .iter()
            .find(|a| a.lint == lint && a.target_line == line)?;
        hit.used.set(true);
        Some(hit)
    }

    /// Non-consuming check (for lints that probe speculatively).
    pub fn covers(&self, lint: LintId, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.lint == lint && a.target_line == line)
    }
}

/// The marker every annotation starts with, after the comment
/// introducer.
const MARKER: &str = "analyze:";

/// Scan a file's comments for annotations. `lexed` supplies both the
/// comments and the code-line map used to resolve own-line annotation
/// targets.
pub fn scan_allows(lexed: &Lexed<'_>) -> AllowTable {
    let mut table = AllowTable::default();
    for c in &lexed.comments {
        // Strip the comment introducer and leading `/`/`!`/`*` noise so
        // `///` and `//!` doc comments can carry annotations too.
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim();
        // The annotation must be the comment's entire content: prose
        // that merely *mentions* `analyze:` mid-sentence is not one.
        if !body.starts_with(MARKER) {
            continue;
        }
        let rest = body[MARKER.len()..].trim();
        match parse_allow(rest) {
            Ok((lint, reason)) => {
                let target_line = if c.own_line {
                    // The next line holding a code token.
                    lexed
                        .tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|l| *l > c.line)
                        .unwrap_or(c.line)
                } else {
                    c.line
                };
                table.allows.push(Allow {
                    lint,
                    reason,
                    target_line,
                    comment_line: c.line,
                    used: Cell::new(false),
                });
            }
            Err(why) => table.torn.push((c.line, why)),
        }
    }
    table
}

/// Parse the part after `analyze:`. Grammar:
/// `allow(<lint-id>) -- <reason>` with a non-empty reason.
fn parse_allow(rest: &str) -> Result<(LintId, String), String> {
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<lint>) -- <reason>` after `analyze:`, found `{rest}`"
        ));
    };
    let Some(close) = inner.find(')') else {
        return Err("unclosed `allow(` — missing `)`".to_string());
    };
    let id = inner[..close].trim();
    let Some(lint) = LintId::parse(id) else {
        return Err(format!(
            "unknown lint `{id}` (known: lock-order, failpoint, doc-drift, panic, unsafe, determinism)"
        ));
    };
    if lint == LintId::BadAnnotation {
        return Err("`bad-annotation` cannot be allowed".to_string());
    }
    let after = inner[close + 1..].trim();
    let Some(reason) = after.strip_prefix("--") else {
        return Err("missing ` -- <reason>` after `allow(..)`".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason — annotations must say why".to_string());
    }
    Ok((lint, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let x = v.pop().unwrap(); // analyze: allow(panic) -- seeded nonempty\n";
        let t = scan_allows(&lex(src));
        assert_eq!(t.allows.len(), 1);
        assert_eq!(t.allows[0].lint, LintId::Panic);
        assert_eq!(t.allows[0].target_line, 1);
        assert_eq!(t.allows[0].reason, "seeded nonempty");
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let src = "\n// analyze: allow(unsafe) -- audited below\n\nunsafe { work() }\n";
        let t = scan_allows(&lex(src));
        assert_eq!(t.allows.len(), 1);
        assert_eq!(t.allows[0].target_line, 4);
    }

    #[test]
    fn torn_annotations_reported() {
        for bad in [
            "// analyze: allow(panic)",                 // no reason
            "// analyze: allow(panic) -- ",             // empty reason
            "// analyze: allow(nonsense) -- whatever",  // unknown lint
            "// analyze: allowing(panic) -- whatever",  // wrong verb
            "// analyze: allow(panic -- missing close", // unclosed
        ] {
            let t = scan_allows(&lex(bad));
            assert_eq!(t.allows.len(), 0, "{bad}");
            assert_eq!(t.torn.len(), 1, "{bad}");
        }
    }

    #[test]
    fn consume_marks_used() {
        let src = "x.unwrap(); // analyze: allow(panic) -- fine\n";
        let t = scan_allows(&lex(src));
        assert!(t.consume(LintId::Panic, 1).is_some());
        assert!(t.allows[0].used.get());
        assert!(t.consume(LintId::Unsafe, 1).is_none());
    }
}
