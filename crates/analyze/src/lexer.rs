//! A hand-rolled, dependency-free Rust lexer.
//!
//! The build environment cannot reach crates.io, so `syn` is off the
//! table; every lint in this crate works off the token stream this
//! module produces. It is *not* a full Rust lexer — it is exactly
//! faithful for the things the lints care about:
//!
//! * comments (line, block incl. nesting, doc) are lexed and kept in a
//!   **side table** so annotation scanning (`// analyze: allow(..)`,
//!   `// SAFETY:`) sees them while structural scanning does not;
//! * string/char/byte/raw-string literals are consumed atomically, so a
//!   `".lock()"` inside a string can never fool a lint;
//! * identifiers, lifetimes, numbers, and multi-char punctuation are
//!   single tokens with line numbers.
//!
//! Anything fancier (macro expansion, type inference) is deliberately
//! out of scope; lints compensate with conservative heuristics plus the
//! annotation escape hatch.

/// One lexed token. `text` borrows from the source for identifiers and
/// literals; punctuation carries its exact spelling too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// Exact source text of the token. For string literals this is the
    /// raw source slice including quotes.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish; lints
    /// match on text).
    Ident,
    /// `'a` lifetime (or loop label).
    Lifetime,
    /// Integer or float literal.
    Number,
    /// `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"` string literal.
    Str,
    /// `'c'` or `b'c'` char literal.
    Char,
    /// Any punctuation: single char (`{`) or glued (`::`, `->`, `..=`).
    Punct,
}

/// A comment captured to the side table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment<'a> {
    /// Full text including the `//` / `/*` introducer.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its
    /// line (an "own-line" comment — the kind annotations live in).
    pub own_line: bool,
}

/// Lexer output: the code token stream plus the comment side table,
/// both in source order.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<Comment<'a>>,
}

/// Multi-char punctuation, longest first so maximal munch works.
const GLUED: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lex `src` into tokens + comments. Unterminated constructs (string,
/// block comment) are tolerated by consuming to end-of-input — the
/// lints prefer degraded output over refusing a file.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Byte offset of the first non-whitespace on the current line, used
    // to mark own-line comments; reset at every newline.
    let mut line_has_code = false;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: &src[start..i],
                    line,
                    own_line: !line_has_code,
                });
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let own = !line_has_code;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: &src[start..i],
                    line: start_line,
                    own_line: own,
                });
            }
            b'"' => {
                line_has_code = true;
                let (end, nl) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: &src[i..end],
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' | b'c' if is_string_prefix(bytes, i) => {
                line_has_code = true;
                let start = i;
                // Skip the prefix letters (`r`, `b`, `br`, `cr`, …).
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                }
                let (end, nl) = if bytes[i] == b'#' || bytes[i] == b'"' {
                    if src[start..i].contains('r') {
                        scan_raw_string(bytes, i)
                    } else {
                        scan_string(bytes, i)
                    }
                } else {
                    // b'x' byte char
                    (scan_char(bytes, i), 0)
                };
                let kind = if bytes[i] == b'\'' {
                    TokenKind::Char
                } else {
                    TokenKind::Str
                };
                out.tokens.push(Token {
                    kind,
                    text: &src[start..end],
                    line,
                });
                line += nl;
                i = end;
            }
            b'\'' => {
                line_has_code = true;
                // Either a lifetime (`'a`) or a char literal (`'x'`).
                if is_lifetime(bytes, i) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: &src[start..i],
                        line,
                    });
                } else {
                    let end = scan_char(bytes, i);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: &src[i..end],
                        line,
                    });
                    i = end;
                }
            }
            _ if is_ident_start(b) => {
                line_has_code = true;
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: &src[start..i],
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                line_has_code = true;
                let start = i;
                i += 1;
                // Consume the number body: digits, `_`, hex/bin letters,
                // type suffixes, a decimal point followed by a digit,
                // exponents. `1..2` must not eat the range dots.
                while i < bytes.len() {
                    let c = bytes[i];
                    let continues = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.'
                            && i + 1 < bytes.len()
                            && bytes[i + 1].is_ascii_digit()
                            && !src[start..i].contains('.'));
                    if continues {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: &src[start..i],
                    line,
                });
            }
            _ => {
                line_has_code = true;
                let rest = &src[i..];
                let glued = GLUED.iter().find(|g| rest.starts_with(**g));
                let len = glued.map(|g| g.len()).unwrap_or_else(|| {
                    // Fall back to one UTF-8 character.
                    rest.chars().next().map(char::len_utf8).unwrap_or(1)
                });
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: &src[i..i + len],
                    line,
                });
                i += len;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Does the `r`/`b`/`c` at `i` introduce a string/char prefix
/// (`r"`, `r#"`, `b"`, `b'`, `br"`, `cr#"` …) rather than an ident?
fn is_string_prefix(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < bytes.len() && (bytes[j] as char).is_ascii_alphabetic() && j - i <= 2 {
        j += 1;
    }
    if j - i > 2 || j >= bytes.len() {
        return false;
    }
    let prefix = &bytes[i..j];
    let ok_prefix = matches!(prefix, b"r" | b"b" | b"c" | b"br" | b"cr");
    if !ok_prefix {
        return false;
    }
    match bytes[j] {
        b'"' => true,
        b'\'' => prefix == b"b",
        b'#' if prefix.contains(&b'r') => {
            // `r#"…"#` raw string — but `r#ident` is a raw identifier;
            // only a quote after the hashes makes it a string.
            let mut k = j;
            while k < bytes.len() && bytes[k] == b'#' {
                k += 1;
            }
            k < bytes.len() && bytes[k] == b'"'
        }
        _ => false,
    }
}

/// Is the `'` at `i` a lifetime/label rather than a char literal?
/// Lifetime: `'ident` not followed by a closing `'`.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    if i + 1 >= bytes.len() || !is_ident_start(bytes[i + 1]) {
        return false;
    }
    // 'static, 'a — scan the ident; if it ends with `'` it was a char
    // like 'x'.
    let mut j = i + 1;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    !(j < bytes.len() && bytes[j] == b'\'' && j == i + 2)
}

/// Scan a `"…"` string starting at the opening quote (or at `i` where
/// `bytes[i] == b'"'`). Returns (end offset past closing quote, newline
/// count inside).
fn scan_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                // An escaped newline (line-continuation) still advances
                // the line counter — later tokens must keep true lines.
                if bytes.get(j + 1) == Some(&b'\n') {
                    nl += 1;
                }
                j += 2;
            }
            b'\n' => {
                nl += 1;
                j += 1;
            }
            b'"' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scan a raw string starting at `#`s or the quote: `r#"…"#`. `i`
/// points at the first `#` or `"` after the prefix letters.
fn scan_raw_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut hashes = 0usize;
    let mut j = i;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        j += 1;
    }
    let mut nl = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            nl += 1;
            j += 1;
        } else if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while k < bytes.len() && bytes[k] == b'#' && h < hashes {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return (k, nl);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, nl)
}

/// Scan a char literal `'x'` / `'\n'` / `b'x'` starting at the quote.
fn scan_char(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // malformed; stop at line end
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn foo(x: &mut u32) -> bool {}");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "foo".into()));
        assert!(toks.iter().any(|t| t.1 == "->"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "a.lock() // not a comment"; x.lock();"#);
        assert_eq!(l.comments.len(), 0);
        let locks: Vec<_> = l.tokens.iter().filter(|t| t.text == "lock").collect();
        assert_eq!(locks.len(), 1, "lock inside a string must not tokenize");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r##"let s = r#"quote " inside"#; y"##);
        assert!(l.tokens.iter().any(|t| t.text == "y"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn comments_side_table_with_lines() {
        let src = "let a = 1;\n// analyze: allow(panic) -- test\nlet b = 2; // trailing\n/* block\nspans */ let c = 3;\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].own_line);
        assert_eq!(l.comments[1].line, 3);
        assert!(!l.comments[1].own_line);
        assert_eq!(l.comments[2].line, 4);
        let c_tok = l.tokens.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c_tok.line, 5);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ code");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "code");
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_count() {
        let src = "let s = \"first \\\n    second\";\nlet after = 1;\n";
        let l = lex(src);
        let after = l.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 {}");
        assert!(l.tokens.iter().any(|t| t.text == ".."));
        assert!(l.tokens.iter().any(|t| t.text == "0"));
        assert!(l.tokens.iter().any(|t| t.text == "10"));
    }

    #[test]
    fn byte_strings_and_chars() {
        let l = lex("let a = b\"bytes\"; let c = b'x'; let r = br\"raw\";");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }
}
