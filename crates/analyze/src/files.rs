//! Workspace discovery: find every Rust source file (plus the docs and
//! CI config the drift lints compare against) and classify it, because
//! almost every lint scopes by file role — panic-freedom skips tests
//! and benches, failpoint-conformance *reads* tests as coverage
//! evidence, the shims are vendored stand-ins for external crates and
//! are skipped entirely.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What role a Rust file plays in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source under some crate's `src/` (or the umbrella
    /// `src/`). The full lint set applies.
    Lib,
    /// Integration tests (`crates/*/tests/**`, root `tests/**`).
    Test,
    /// The bench/experiment harness crate. Not linted, but scanned as
    /// failpoint exercise evidence (the CI fault matrix drives it).
    Bench,
    /// `examples/**` — demo code, not linted.
    Example,
    /// `crates/shims/**` — vendored stand-ins for crates.io
    /// dependencies. They deliberately mirror external APIs (including
    /// panicky ones) and are skipped entirely.
    Shim,
}

/// One loaded source file.
#[derive(Debug)]
pub struct FileEntry {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    pub kind: FileKind,
    /// Owning crate name (`store`, `net`, …); the umbrella package and
    /// root-level tests/examples report `orchestra`.
    pub crate_name: String,
    pub src: String,
}

/// A non-Rust file the doc-sync lints read (markdown docs, CI yaml).
#[derive(Debug)]
pub struct DocFile {
    pub rel_path: String,
    pub src: String,
}

/// The loaded workspace.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<FileEntry>,
    pub docs: Vec<DocFile>,
}

impl Workspace {
    pub fn doc(&self, rel: &str) -> Option<&DocFile> {
        self.docs.iter().find(|d| d.rel_path == rel)
    }
}

/// Load the workspace rooted at `root`. Fails only on I/O errors for
/// files that exist but cannot be read; missing optional docs are
/// simply absent (the doc-drift lint then reports them).
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(root, &dir, &mut files)?;
        }
    }
    // Deterministic order regardless of readdir order.
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    let mut docs = Vec::new();
    for rel in [
        "docs/wire-protocol.md",
        "docs/architecture.md",
        "docs/observability.md",
        "README.md",
    ] {
        let p = root.join(rel);
        if p.is_file() {
            docs.push(DocFile {
                rel_path: rel.to_string(),
                src: fs::read_to_string(&p)?,
            });
        }
    }
    let wf = root.join(".github/workflows");
    if wf.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&wf)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension()
                    .map(|e| e == "yml" || e == "yaml")
                    .unwrap_or(false)
            })
            .collect();
        entries.sort();
        for p in entries {
            docs.push(DocFile {
                rel_path: rel_str(root, &p),
                src: fs::read_to_string(&p)?,
            });
        }
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        docs,
    })
}

fn rel_str(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<FileEntry>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` build output, hidden dirs, and lint fixture
            // corpora (deliberate violations) are never workspace
            // source.
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            walk_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_str(root, &path);
            let (kind, crate_name) = classify(&rel);
            out.push(FileEntry {
                rel_path: rel,
                kind,
                crate_name,
                src: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> (FileKind, String) {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("orchestra")
        .to_string();
    let kind = if rel.starts_with("crates/shims/") {
        FileKind::Shim
    } else if rel.starts_with("crates/bench/") {
        FileKind::Bench
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/") {
        FileKind::Test
    } else {
        FileKind::Lib
    };
    (kind, crate_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_roles() {
        assert_eq!(
            classify("crates/store/src/replicated.rs"),
            (FileKind::Lib, "store".to_string())
        );
        assert_eq!(
            classify("crates/store/tests/durable_recovery.rs").0,
            FileKind::Test
        );
        assert_eq!(classify("tests/properties.rs").0, FileKind::Test);
        assert_eq!(classify("tests/properties.rs").1, "orchestra");
        assert_eq!(classify("crates/bench/src/json.rs").0, FileKind::Bench);
        assert_eq!(
            classify("crates/shims/parking_lot/src/lib.rs").0,
            FileKind::Shim
        );
        assert_eq!(classify("examples/quickstart.rs").0, FileKind::Example);
        assert_eq!(classify("src/lib.rs").0, FileKind::Lib);
    }
}
