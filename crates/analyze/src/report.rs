//! Report assembly and output: gcc-style text lines for humans and
//! editors, JSON for machines (the CI gate and the shape test consume
//! it). The JSON writer is hand-rolled — same offline constraint as
//! everything else — with full string escaping.

use crate::findings::{Finding, LintId};
use std::collections::BTreeMap;

/// The result of one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Files scanned, by role, for the summary line.
    pub files_scanned: usize,
}

impl Report {
    /// Sort findings for stable output: file, then line, then lint.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    }

    pub fn total(&self) -> usize {
        self.findings.len()
    }

    pub fn allowed(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed.is_some()).count()
    }

    /// Findings not covered by an annotation — the gate fails on these.
    pub fn unannotated(&self) -> usize {
        self.total() - self.allowed()
    }

    pub fn by_lint(&self) -> BTreeMap<LintId, (usize, usize)> {
        let mut m: BTreeMap<LintId, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let e = m.entry(f.lint).or_default();
            e.0 += 1;
            if f.allowed.is_some() {
                e.1 += 1;
            }
        }
        m
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match &f.allowed {
                Some(reason) => format!(" (allowed: {reason})"),
                None => String::new(),
            };
            out.push_str(&format!(
                "{}:{}: [{}] {}{}\n",
                f.file, f.line, f.lint, f.message, tag
            ));
        }
        out.push_str(&format!(
            "orchestra-analyze: {} files scanned, {} findings ({} allowed, {} unannotated)\n",
            self.files_scanned,
            self.total(),
            self.allowed(),
            self.unannotated(),
        ));
        for (lint, (total, allowed)) in self.by_lint() {
            out.push_str(&format!(
                "  {lint}: {total} ({allowed} allowed, {} unannotated)\n",
                total - allowed
            ));
        }
        out
    }

    /// Machine-readable report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str("  \"tool\": \"orchestra-analyze\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"lint\": {}, ", json_str(f.lint.as_str())));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            match &f.allowed {
                Some(reason) => out.push_str(&format!(
                    "\"allowed\": true, \"reason\": {}",
                    json_str(reason)
                )),
                None => out.push_str("\"allowed\": false"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"total\": {},\n", self.total()));
        out.push_str(&format!("    \"allowed\": {},\n", self.allowed()));
        out.push_str(&format!("    \"unannotated\": {},\n", self.unannotated()));
        out.push_str("    \"by_lint\": {");
        let by = self.by_lint();
        for (i, (lint, (total, allowed))) in by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {}: {{\"total\": {}, \"allowed\": {}, \"unannotated\": {}}}",
                json_str(lint.as_str()),
                total,
                allowed,
                total - allowed
            ));
        }
        if !by.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  }\n}\n");
        out
    }
}

/// Escape a string for JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Finding;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![Finding::new(LintId::Panic, "b.rs", 3, "unwrap in lib"), {
                let mut f = Finding::new(LintId::Unsafe, "a.rs", 9, "no SAFETY \"quoted\"");
                f.allowed = Some("checked by hand".into());
                f
            }],
            files_scanned: 2,
        };
        r.finalize();
        r
    }

    #[test]
    fn text_is_sorted_and_tagged() {
        let text = sample().render_text();
        let a = text.find("a.rs:9").unwrap();
        let b = text.find("b.rs:3").unwrap();
        assert!(a < b);
        assert!(text.contains("(allowed: checked by hand)"));
        assert!(text.contains("1 allowed, 1 unannotated"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = sample().render_json();
        assert!(json.contains("\"no SAFETY \\\"quoted\\\"\""));
        assert!(json.contains("\"unannotated\": 1,"));
        assert!(json.contains("\"allowed\": false"));
    }
}
