//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p orchestra-analyze -- --workspace            # gate mode
//! cargo run -p orchestra-analyze -- --workspace --json     # machine output
//! cargo run -p orchestra-analyze -- --workspace --lint panic --lint unsafe
//! cargo run -p orchestra-analyze -- --root /path/to/tree
//! ```
//!
//! Exit codes: `0` clean (no unannotated findings), `1` unannotated
//! findings, `2` usage or I/O error.

use orchestra_analyze::findings::LintId;
use orchestra_analyze::Options;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut lints: Vec<LintId> = Vec::new();
    let mut workspace = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--lint" => match args.next().as_deref().map(LintId::parse) {
                Some(Some(l)) => lints.push(l),
                Some(None) => return usage("unknown lint id (see --list-lints)"),
                None => return usage("--lint needs a lint id"),
            },
            "--list-lints" => {
                for l in LintId::ALL {
                    println!("{l}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "orchestra-analyze: workspace invariant linter\n\n\
                     USAGE: orchestra-analyze --workspace [--root PATH] [--json] [--lint ID]...\n\n\
                     Lints: lock-order, failpoint, doc-drift, panic, unsafe, determinism\n\
                     Annotate findings with `// analyze: allow(<lint>) -- <reason>`.\n\
                     Docs: docs/static-analysis.md"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace && root.is_none() {
        return usage("pass --workspace (scan the current workspace) or --root PATH");
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let mut opts = Options::default();
    if !lints.is_empty() {
        // Annotation hygiene always runs alongside explicit selections.
        lints.push(LintId::BadAnnotation);
        opts.lints = lints;
    }

    match orchestra_analyze::analyze(&root, &opts) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.unannotated() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!(
                "orchestra-analyze: cannot read workspace at {}: {e}",
                root.display()
            );
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the first directory that has
/// a `crates/` subdirectory next to a `Cargo.toml` (the workspace
/// root); fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..5 {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => break,
        }
    }
    PathBuf::from(".")
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("orchestra-analyze: {msg}\ntry `orchestra-analyze --help`");
    ExitCode::from(2)
}
