//! Fixture: panic-freedom violations. Mapped into a byte-parsing path
//! (`crates/store/src/durable/`) by the harness so the indexing check
//! applies too. One violation carries a justifying annotation and must
//! come back `allowed`, not unannotated; the test-module unwrap must
//! not be flagged at all.

pub fn decode(buf: &[u8]) -> u32 {
    let first = buf[0];
    let parsed: Option<u32> = None;
    let v = parsed.unwrap();
    let w: Result<u32, ()> = Ok(3);
    let x = w.expect("always ok");
    if buf.len() > 99 {
        panic!("frame too long");
    }
    first as u32 + v + x
}

pub fn guarded() -> u32 {
    let opt: Option<u32> = Some(1);
    opt.unwrap() // analyze: allow(panic) -- seeded Some on the line above
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(2);
        assert_eq!(v.unwrap(), 2);
    }
}
