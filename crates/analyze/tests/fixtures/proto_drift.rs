//! Fixture: a miniature proto.rs whose opcode constants and counter
//! struct deliberately drift from the paired wire doc: `OP_ORPHAN` has
//! no table row, `0x04` is documented under the wrong name, the doc
//! invents `0x03 GHOST`, and `ServerCounters.pongs` plus the
//! `2×uvarint` arity are missing from the doc.

pub const OP_PING: u8 = 0x01;
pub const OP_ORPHAN: u8 = 0x02;
pub const OP_RENAMED: u8 = 0x04;

pub struct ServerCounters {
    pub pings: u64,
    pub pongs: u64,
}
