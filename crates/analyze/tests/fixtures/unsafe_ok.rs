//! Fixture: a justified `unsafe` block — the audit lint must accept
//! the adjacent SAFETY comment.

pub fn read_word(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is non-null, aligned, and
    // points into a live allocation for the duration of the call.
    unsafe { *p }
}
