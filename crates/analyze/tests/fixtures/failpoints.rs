//! Fixture: failpoint-conformance violations. `store.fix.write` is
//! registered twice (uniqueness violation); `store.fix.orphan` has no
//! exercise evidence anywhere; `store.fix.covered` is mentioned by the
//! synthetic test file the harness pairs with this fixture.

pub fn write_segment() {
    orchestra_fault::check("store.fix.write");
    orchestra_fault::check("store.fix.orphan");
    orchestra_fault::check("store.fix.covered");
}

pub fn rotate_segment() {
    orchestra_fault::check("store.fix.write");
}
