//! Fixture: seeded lock-order violations.
//!
//! `forward` takes `a` then `b`; `backward` takes `b` then `a` — a
//! two-lock cycle. `outer` calls `audit` while holding `a`, and
//! `audit` re-locks `a` — a self-deadlock through a call edge.

use crate::shim::Mutex;

pub struct Node {
    a: Mutex<Vec<u32>>,
    b: Mutex<Vec<u32>>,
}

impl Node {
    pub fn forward(&self) -> usize {
        let ga = self.a.lock();
        let gb = self.b.lock();
        ga.len() + gb.len()
    }

    pub fn backward(&self) -> usize {
        let gb = self.b.lock();
        let ga = self.a.lock();
        gb.len() + ga.len()
    }

    pub fn outer(&self) -> usize {
        let ga = self.a.lock();
        let n = self.audit();
        drop(ga);
        n
    }

    fn audit(&self) -> usize {
        let ga = self.a.lock();
        ga.len()
    }
}
