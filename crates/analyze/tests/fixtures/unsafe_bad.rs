//! Fixture: an unjustified `unsafe` block — no safety comment at all.

pub fn read_word(p: *const u32) -> u32 {
    unsafe { *p }
}
