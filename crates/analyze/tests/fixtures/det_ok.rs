//! Fixture: hash iteration the determinism lint must accept — the
//! statement chain ends in an order-insensitive reduction (`sum`) or
//! an ordered collection (`BTreeMap`), and non-marker functions are
//! out of scope entirely.

use std::collections::{BTreeMap, HashMap};

pub struct Index {
    buckets: HashMap<u64, Vec<u64>>,
}

impl Index {
    pub fn merge_total(&self) -> u64 {
        self.buckets.values().map(|v| v.len() as u64).sum()
    }

    pub fn snapshot_sorted(&self) -> BTreeMap<u64, usize> {
        self.buckets.iter().map(|(k, v)| (*k, v.len())).collect::<BTreeMap<_, _>>()
    }

    pub fn peek(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }
}
