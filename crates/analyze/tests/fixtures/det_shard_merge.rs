//! Fixture: the partitioned-merge module layout. Mounted at
//! `crates/datalog/src/merge.rs` by the harness — the per-shard sink's
//! `drain_*` functions are determinism-critical (they decide change-log
//! and provenance recording order), so a hash-order iteration inside one
//! must be flagged, while the order-insensitive twin stays clean.

use std::collections::HashMap;

pub struct ShardSink {
    pending: HashMap<u64, Vec<u64>>,
}

impl ShardSink {
    /// BAD: emits in hash order — the change log would differ run to run.
    pub fn drain_pending(&mut self, out: &mut Vec<u64>) {
        for (_fp, nodes) in self.pending.drain() {
            out.extend(nodes);
        }
    }

    /// OK: order-insensitive reduction over the same container.
    pub fn merge_count(&self) -> u64 {
        self.pending.values().map(|v| v.len() as u64).sum()
    }

    /// OK: not a marker function — bookkeeping reads are out of scope.
    pub fn contains(&self, fp: u64) -> bool {
        self.pending.contains_key(&fp)
    }
}
