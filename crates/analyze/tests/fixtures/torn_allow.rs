//! Fixture: annotation hygiene violations — a torn annotation (no
//! ` -- <reason>` clause) and a stale allow on a line that no longer
//! triggers its lint. Both must surface as `bad-annotation`.

// analyze: allow(panic)
pub fn torn_target() -> u32 {
    7
}

pub fn stale_target() -> u32 {
    11 // analyze: allow(panic) -- nothing on this line panics anymore
}
