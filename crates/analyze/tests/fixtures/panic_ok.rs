//! Fixture: library code the panic lint must leave alone — error
//! propagation, checked access, and defaulting instead of unwrapping.

pub fn decode(buf: &[u8]) -> Result<u32, String> {
    let first = buf.first().copied().ok_or_else(|| "empty".to_string())?;
    let rest = buf.get(1..).unwrap_or(&[]);
    Ok(first as u32 + rest.len() as u32)
}
