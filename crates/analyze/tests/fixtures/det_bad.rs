//! Fixture: hash-order iteration inside a merge function. Mapped to a
//! determinism-critical path (`crates/datalog/src/engine.rs`) by the
//! harness.

use std::collections::HashMap;

pub struct Index {
    buckets: HashMap<u64, Vec<u64>>,
}

impl Index {
    pub fn merge_counts(&self) -> u64 {
        let mut acc = 0;
        for (_k, v) in self.buckets.iter() {
            acc += v.len() as u64;
        }
        acc
    }
}
