//! Fixture: lock usage the lint must NOT flag — consistent ordering,
//! explicit `drop` before the next acquisition, and a chained
//! temporary guard (`.lock().pop()`) whose re-lock is sequential, not
//! nested.

use crate::shim::Mutex;

pub struct Pair {
    a: Mutex<Vec<u32>>,
    b: Mutex<Vec<u32>>,
}

impl Pair {
    pub fn both(&self) -> usize {
        let ga = self.a.lock();
        let gb = self.b.lock();
        ga.len() + gb.len()
    }

    pub fn also_both(&self) -> usize {
        let ga = self.a.lock();
        let n = ga.len();
        drop(ga);
        let gb = self.b.lock();
        n + gb.len()
    }

    pub fn chained(&self) -> Option<u32> {
        let popped = self.a.lock().pop();
        let mut ga = self.a.lock();
        ga.push(7);
        popped
    }
}
