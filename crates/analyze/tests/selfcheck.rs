//! The forcing function: the analyzer must run clean on the real
//! workspace. Every deliberate deviation from a lint's rule needs an
//! inline `// analyze: allow(..) -- reason`, so this test failing
//! means either a genuine new violation or an undocumented waiver —
//! both things a human should look at.

use orchestra_analyze::Options;
use std::path::Path;

#[test]
fn real_workspace_has_no_unannotated_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        orchestra_analyze::analyze(&root, &Options::default()).expect("workspace sources readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert_eq!(
        report.unannotated(),
        0,
        "unannotated findings in the real workspace:\n{}",
        report.render_text()
    );
}
