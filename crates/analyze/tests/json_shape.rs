//! Shape test for `--json` output: the rendered report must be valid
//! JSON (checked by a minimal recursive-descent parser — no external
//! crates) with the documented fields, and the counts must be
//! internally consistent.

use orchestra_analyze::files::{classify, FileEntry, Workspace};
use orchestra_analyze::{analyze_workspace, Options};
use std::collections::BTreeMap;
use std::path::PathBuf;

// ---- minimal JSON value + parser ---------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let s = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.b.len() {
            return Err(format!("trailing garbage at byte {}", self.i));
        }
        Ok(v)
    }
}

// ---- the shape test -----------------------------------------------------

#[test]
fn json_report_parses_with_documented_shape() {
    // A workspace with both unannotated and allowed findings, plus a
    // message containing quotes/backslashes to exercise escaping.
    let src = r#"
pub fn risky(buf: &[u8]) -> u8 {
    let v: Option<u8> = None;
    let a = v.unwrap();
    let b: Option<u8> = Some(1);
    a + b.unwrap() + buf[0] // analyze: allow(panic) -- "quoted \ reason"
}
"#;
    let (kind, crate_name) = classify("crates/store/src/durable/fixture.rs");
    let ws = Workspace {
        root: PathBuf::from("<fixture>"),
        files: vec![FileEntry {
            rel_path: "crates/store/src/durable/fixture.rs".to_string(),
            kind,
            crate_name,
            src: src.to_string(),
        }],
        docs: vec![],
    };
    let report = analyze_workspace(&ws, &Options::default());
    assert!(report.total() >= 2, "{}", report.render_text());
    assert!(report.allowed() >= 1, "{}", report.render_text());

    let json = report.render_json();
    let v = Parser::new(&json)
        .parse()
        .unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{json}"));

    assert_eq!(v.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        v.get("tool").and_then(Json::as_str),
        Some("orchestra-analyze")
    );
    assert_eq!(v.get("files_scanned").and_then(Json::as_num), Some(1.0));

    let findings = v
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings[]");
    assert_eq!(findings.len(), report.total());
    for f in findings {
        assert!(f.get("lint").and_then(Json::as_str).is_some());
        assert!(f.get("file").and_then(Json::as_str).is_some());
        assert!(f.get("line").and_then(Json::as_num).is_some());
        assert!(f.get("message").and_then(Json::as_str).is_some());
        match f.get("allowed") {
            Some(Json::Bool(true)) => {
                assert!(f.get("reason").and_then(Json::as_str).is_some())
            }
            Some(Json::Bool(false)) => assert!(f.get("reason").is_none()),
            other => panic!("allowed must be a bool, got {other:?}"),
        }
    }
    // The escaped reason round-trips exactly.
    assert!(findings
        .iter()
        .filter_map(|f| f.get("reason").and_then(Json::as_str))
        .any(|r| r == "\"quoted \\ reason\""));

    let summary = v.get("summary").expect("summary");
    let total = summary.get("total").and_then(Json::as_num).expect("total") as usize;
    let allowed = summary
        .get("allowed")
        .and_then(Json::as_num)
        .expect("allowed") as usize;
    let unannotated = summary
        .get("unannotated")
        .and_then(Json::as_num)
        .expect("unannotated") as usize;
    assert_eq!(total, report.total());
    assert_eq!(allowed, report.allowed());
    assert_eq!(unannotated, total - allowed);

    let by_lint = summary.get("by_lint").expect("by_lint");
    let panic_bucket = by_lint.get("panic").expect("panic bucket");
    assert_eq!(
        panic_bucket
            .get("total")
            .and_then(Json::as_num)
            .map(|n| n as usize),
        Some(report.total())
    );
}
