//! Fixture-corpus tests: every lint gets a positive case (the seeded
//! violation is found) and a negative case (the compliant twin stays
//! clean). The fixtures live under `tests/fixtures/` — a directory the
//! workspace walker deliberately skips, so the deliberate violations
//! never leak into a real `--workspace` run — and are mounted into
//! synthetic [`Workspace`] values at whatever path each lint scopes
//! by.

use orchestra_analyze::files::{classify, DocFile, FileEntry, Workspace};
use orchestra_analyze::findings::{Finding, LintId};
use orchestra_analyze::report::Report;
use orchestra_analyze::{analyze_workspace, Options};
use std::path::PathBuf;

fn entry(rel: &str, src: &str) -> FileEntry {
    let (kind, crate_name) = classify(rel);
    FileEntry {
        rel_path: rel.to_string(),
        kind,
        crate_name,
        src: src.to_string(),
    }
}

fn ws(files: Vec<FileEntry>, docs: Vec<(&str, &str)>) -> Workspace {
    Workspace {
        root: PathBuf::from("<fixture>"),
        files,
        docs: docs
            .into_iter()
            .map(|(rel, src)| DocFile {
                rel_path: rel.to_string(),
                src: src.to_string(),
            })
            .collect(),
    }
}

fn run(ws: &Workspace, lints: &[LintId]) -> Report {
    analyze_workspace(
        ws,
        &Options {
            lints: lints.to_vec(),
        },
    )
}

fn of(report: &Report, lint: LintId) -> Vec<&Finding> {
    report.findings.iter().filter(|f| f.lint == lint).collect()
}

// ---- lock-order ---------------------------------------------------------

#[test]
fn lock_order_positive_cycle_and_self_edge() {
    let w = ws(
        vec![entry(
            "crates/store/src/fixture.rs",
            include_str!("fixtures/lock_cycle.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::LockOrder]);
    let hits = of(&r, LintId::LockOrder);
    assert_eq!(hits.len(), 2, "{}", r.render_text());
    assert!(
        hits.iter()
            .any(|f| f.message.contains("self-deadlock") && f.message.contains("Node.a")),
        "{}",
        r.render_text()
    );
    assert!(
        hits.iter().any(|f| f.message.contains("lock-order cycle")
            && f.message.contains("Node.a")
            && f.message.contains("Node.b")),
        "{}",
        r.render_text()
    );
}

#[test]
fn lock_order_negative_consistent_order() {
    let w = ws(
        vec![entry(
            "crates/store/src/fixture.rs",
            include_str!("fixtures/lock_clean.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::LockOrder]);
    assert_eq!(of(&r, LintId::LockOrder).len(), 0, "{}", r.render_text());
}

// ---- panic --------------------------------------------------------------

#[test]
fn panic_positive_all_forms_found_allow_honored() {
    let w = ws(
        vec![entry(
            "crates/store/src/durable/fixture.rs",
            include_str!("fixtures/panic_bad.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Panic, LintId::BadAnnotation]);
    let hits = of(&r, LintId::Panic);
    // indexing + unwrap + expect + panic! unannotated; guarded unwrap allowed.
    assert_eq!(hits.len(), 5, "{}", r.render_text());
    assert_eq!(r.allowed(), 1, "{}", r.render_text());
    assert_eq!(r.unannotated(), 4, "{}", r.render_text());
    assert!(hits.iter().any(|f| f.message.contains("indexing")));
    // The consumed allow is not stale: no annotation-hygiene findings.
    assert_eq!(
        of(&r, LintId::BadAnnotation).len(),
        0,
        "{}",
        r.render_text()
    );
}

#[test]
fn panic_negative_propagating_twin_is_clean() {
    let w = ws(
        vec![entry(
            "crates/store/src/durable/fixture.rs",
            include_str!("fixtures/panic_ok.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Panic]);
    assert_eq!(r.total(), 0, "{}", r.render_text());
}

// ---- unsafe -------------------------------------------------------------

#[test]
fn unsafe_positive_missing_safety_comment() {
    let w = ws(
        vec![entry(
            "crates/store/src/fixture.rs",
            include_str!("fixtures/unsafe_bad.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Unsafe]);
    let hits = of(&r, LintId::Unsafe);
    assert_eq!(hits.len(), 1, "{}", r.render_text());
    assert!(hits[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_negative_justified_block_is_clean() {
    let w = ws(
        vec![entry(
            "crates/store/src/fixture.rs",
            include_str!("fixtures/unsafe_ok.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Unsafe]);
    assert_eq!(r.total(), 0, "{}", r.render_text());
}

// ---- determinism --------------------------------------------------------

#[test]
fn determinism_positive_hash_iteration_in_merge() {
    let w = ws(
        vec![entry(
            "crates/datalog/src/engine.rs",
            include_str!("fixtures/det_bad.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Determinism]);
    let hits = of(&r, LintId::Determinism);
    assert_eq!(hits.len(), 1, "{}", r.render_text());
    assert!(hits[0].message.contains("buckets"));
    assert!(hits[0].message.contains("merge_counts"));
}

#[test]
fn determinism_covers_partitioned_merge_module() {
    // The per-shard merge layout (`crates/datalog/src/merge.rs`) is in
    // the lint's critical set: a hash-order drain inside a sink is
    // flagged, its order-insensitive twin and non-marker reads are not.
    let w = ws(
        vec![entry(
            "crates/datalog/src/merge.rs",
            include_str!("fixtures/det_shard_merge.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Determinism]);
    let hits = of(&r, LintId::Determinism);
    assert_eq!(hits.len(), 1, "{}", r.render_text());
    assert!(hits[0].message.contains("pending"), "{}", r.render_text());
    assert!(
        hits[0].message.contains("drain_pending"),
        "{}",
        r.render_text()
    );
}

#[test]
fn determinism_node_table_module_is_critical() {
    // The packed-NodeId shard table also decides global order; the same
    // bad pattern mounted at `crates/datalog/src/node.rs` must be caught.
    let w = ws(
        vec![entry(
            "crates/datalog/src/node.rs",
            include_str!("fixtures/det_bad.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Determinism]);
    assert_eq!(of(&r, LintId::Determinism).len(), 1, "{}", r.render_text());
}

#[test]
fn determinism_negative_sorted_sinks_are_clean() {
    let w = ws(
        vec![entry(
            "crates/datalog/src/engine.rs",
            include_str!("fixtures/det_ok.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Determinism]);
    assert_eq!(r.total(), 0, "{}", r.render_text());
}

// ---- failpoint ----------------------------------------------------------

#[test]
fn failpoint_positive_duplicate_and_unexercised() {
    let evidence = r#"
        #[test]
        fn storm() {
            let _g = orchestra_fault::scoped("store.fix.write=err@1");
            let _h = orchestra_fault::scoped("store.fix.covered=delay@0.5");
        }
    "#;
    let w = ws(
        vec![
            entry(
                "crates/store/src/fixture.rs",
                include_str!("fixtures/failpoints.rs"),
            ),
            entry("crates/store/tests/fixture_storm.rs", evidence),
        ],
        vec![],
    );
    let r = run(&w, &[LintId::Failpoint]);
    let hits = of(&r, LintId::Failpoint);
    assert_eq!(hits.len(), 2, "{}", r.render_text());
    assert!(
        hits.iter()
            .any(|f| f.message.contains("store.fix.write") && f.message.contains("unique")),
        "{}",
        r.render_text()
    );
    assert!(
        hits.iter().any(
            |f| f.message.contains("store.fix.orphan") && f.message.contains("never exercised")
        ),
        "{}",
        r.render_text()
    );
}

#[test]
fn failpoint_negative_ci_matrix_counts_as_evidence() {
    let lib = r#"pub fn one() { orchestra_fault::check("store.fix.solo"); }"#;
    let w = ws(
        vec![entry("crates/store/src/fixture.rs", lib)],
        vec![(
            ".github/workflows/ci.yml",
            "env:\n  ORCHESTRA_FAULT: store.fix.solo=err@1\n",
        )],
    );
    let r = run(&w, &[LintId::Failpoint]);
    assert_eq!(r.total(), 0, "{}", r.render_text());
}

// ---- doc-drift ----------------------------------------------------------

#[test]
fn doc_drift_positive_opcodes_and_counters() {
    let wire = "\
# Wire

| op | direction | message |
|----|-----------|---------|
| `0x01` | C → S | PING |
| `0x03` | C → S | GHOST |
| `0x04` | C → S | PONG |

The PROBE_OK body reports `pings`.
";
    let w = ws(
        vec![entry(
            "crates/net/src/proto.rs",
            include_str!("fixtures/proto_drift.rs"),
        )],
        vec![("docs/wire-protocol.md", wire)],
    );
    let r = run(&w, &[LintId::DocDrift]);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(r.total(), 5, "{}", r.render_text());
    assert!(msgs
        .iter()
        .any(|m| m.contains("OP_ORPHAN") && m.contains("no row")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("PONG") && m.contains("OP_RENAMED")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("GHOST") && m.contains("does not exist")));
    assert!(msgs.iter().any(|m| m.contains("`pongs`")));
    assert!(msgs.iter().any(|m| m.contains("2×uvarint")));
}

#[test]
fn doc_drift_failpoint_table_both_directions() {
    let lib = r#"
pub fn a() { orchestra_fault::check("store.docd.present"); }
pub fn b() { orchestra_fault::check("store.docd.missing"); }
"#;
    let arch = "\
## Failpoints

| site | effect |
|------|--------|
| `store.docd.present` | wal write errors |
| `store.docd.ghost` | removed long ago |
";
    let w = ws(
        vec![entry("crates/store/src/fixture.rs", lib)],
        vec![("docs/architecture.md", arch)],
    );
    let r = run(&w, &[LintId::DocDrift]);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(r.total(), 2, "{}", r.render_text());
    assert!(msgs
        .iter()
        .any(|m| m.contains("store.docd.missing") && m.contains("not listed")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("store.docd.ghost") && m.contains("does not exist")));
}

#[test]
fn doc_drift_negative_synced_docs_are_clean() {
    let proto = "pub const OP_PING: u8 = 0x01;\npub struct ServerCounters { pub pings: u64 }\n";
    let wire = "\
| op | direction | message |
|----|-----------|---------|
| `0x01` | C → S | PING |

PROBE_OK carries `pings` as 1×uvarint.
";
    let w = ws(
        vec![entry("crates/net/src/proto.rs", proto)],
        vec![("docs/wire-protocol.md", wire)],
    );
    let r = run(&w, &[LintId::DocDrift]);
    assert_eq!(r.total(), 0, "{}", r.render_text());
}

#[test]
fn doc_drift_metric_catalog_both_directions() {
    let lib = r#"
pub fn hot() {
    orchestra_obs::counter!("store.fix.cataloged", 1);
    orchestra_obs::counter!("store.fix.uncataloged", 1);
    orchestra_obs::time_histogram!("store.fix.lat_micros", ());
}
pub fn register() -> orchestra_obs::GaugeHandle {
    orchestra_obs::gauge("store.fix.level")
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        orchestra_obs::counter!("store.fix.testonly", 1);
        orchestra_obs::counter!("test.fix.harness", 1);
    }
}
"#;
    let obs_doc = "\
## Metrics

| name | kind | meaning |
|------|------|---------|
| `store.fix.cataloged` | counter | listed |
| `store.fix.lat_micros` | histogram | listed |
| `store.fix.level` | gauge | listed |
| `store.fix.ghost` | counter | removed long ago |
| `fault.fired.<site>` | counter | placeholder family, skipped |
| `store.fix.roundspan` | span | span rows are exempt |
";
    let w = ws(
        vec![entry("crates/store/src/fixture.rs", lib)],
        vec![("docs/observability.md", obs_doc)],
    );
    let r = run(&w, &[LintId::DocDrift]);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(r.total(), 2, "{}", r.render_text());
    assert!(msgs
        .iter()
        .any(|m| m.contains("store.fix.uncataloged") && m.contains("not cataloged")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("store.fix.ghost") && m.contains("not registered")));
}

#[test]
fn doc_drift_metrics_require_the_catalog_doc() {
    let lib = r#"pub fn hot() { orchestra_obs::counter!("store.fix.orphan", 1); }"#;
    let w = ws(vec![entry("crates/store/src/fixture.rs", lib)], vec![]);
    let r = run(&w, &[LintId::DocDrift]);
    assert_eq!(r.total(), 1, "{}", r.render_text());
    assert!(r.findings[0]
        .message
        .contains("docs/observability.md` is missing"));
}

// ---- bad-annotation -----------------------------------------------------

#[test]
fn torn_and_stale_annotations_reported() {
    let w = ws(
        vec![entry(
            "crates/store/src/fixture.rs",
            include_str!("fixtures/torn_allow.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::Panic, LintId::BadAnnotation]);
    let hits = of(&r, LintId::BadAnnotation);
    assert_eq!(hits.len(), 2, "{}", r.render_text());
    assert!(hits.iter().any(|f| f.message.contains("torn")));
    assert!(hits.iter().any(|f| f.message.contains("unused")));
    // bad-annotation findings are themselves unannotatable: the gate fails.
    assert_eq!(r.unannotated(), 2);
}

#[test]
fn allow_for_a_lint_that_did_not_run_is_not_stale() {
    // Under a `--lint` filter the panic lint never consumes its allows;
    // they must not be reported as unused (torn ones still are).
    let w = ws(
        vec![entry(
            "crates/store/src/fixture.rs",
            include_str!("fixtures/torn_allow.rs"),
        )],
        vec![],
    );
    let r = run(&w, &[LintId::LockOrder, LintId::BadAnnotation]);
    let hits = of(&r, LintId::BadAnnotation);
    assert_eq!(hits.len(), 1, "{}", r.render_text());
    assert!(hits[0].message.contains("torn"));
}
