//! Interned values × durability: symbols are process-local, state is not.
//!
//! The engine's `ValueInterner` assigns dense symbols in first-seen order,
//! so symbol ids are meaningless outside one engine instance. These tests
//! pin down the two guarantees that make that safe:
//!
//! 1. **Ordering independence** — engines whose interners assign
//!    completely different symbols to the same values (forced here by
//!    warming one engine with decoy values first) still compute identical
//!    fixpoints, including identical labeled nulls.
//! 2. **Kill-and-reopen round-trip** — a CDSS backed by the durable WAL
//!    store can be dropped and rebuilt from disk: the recovered exchange
//!    reaches an identical fixpoint through a *fresh* interner, because
//!    the codec serializes values structurally (never symbol ids) —
//!    including explicit labeled nulls flowing through published
//!    transactions.

use orchestra_core::{demo, Cdss};
use orchestra_datalog::{Atom, Term};
use orchestra_datalog::{DeletionAlgorithm, Engine, Tgd};
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use orchestra_store::{DurableOptions, DurableStore, SyncPolicy, UpdateStore};
use orchestra_updates::{PeerId, Update};

#[test]
fn fixpoint_is_independent_of_interner_ordering() {
    // OPS(org, prot, seq) split into O(org, #oid(org)) — labeled nulls.
    let db = DatabaseSchema::new("t")
        .with_relation(
            RelationSchema::from_parts(
                "OPS",
                &[
                    ("org", ValueType::Str),
                    ("prot", ValueType::Str),
                    ("seq", ValueType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts("O", &[("org", ValueType::Str), ("oid", ValueType::Str)])
                .unwrap(),
        )
        .unwrap()
        .with_relation(RelationSchema::from_parts("decoy", &[("v", ValueType::Str)]).unwrap())
        .unwrap();
    let m = Tgd::new(
        "split",
        vec![Atom::vars("OPS", &["org", "prot", "seq"])],
        vec![Atom::new(
            "O",
            vec![
                Term::var("org"),
                Term::skolem("oid", vec![Term::var("org")]),
            ],
        )],
    )
    .unwrap();

    let facts = [
        tuple!["HIV", "gp120", "MRV"],
        tuple!["HIV", "gp41", "AVG"],
        tuple!["Mouse", "p53", "CCT"],
    ];

    // Engine A: plain.
    let mut a = Engine::new(db.clone(), m.compile().unwrap()).unwrap();
    for f in &facts {
        a.insert_base("OPS", f.clone()).unwrap();
    }
    a.propagate().unwrap();

    // Engine B: intern a pile of decoy values first (then retract them),
    // so every shared value gets a different symbol than in A.
    let mut b = Engine::new(db, m.compile().unwrap()).unwrap();
    for i in 0..40 {
        b.insert_base("decoy", tuple![format!("decoy-{i}")])
            .unwrap();
    }
    b.propagate().unwrap();
    for i in 0..40 {
        b.remove_base(
            "decoy",
            &tuple![format!("decoy-{i}")],
            DeletionAlgorithm::ProvenanceBased,
        )
        .unwrap();
    }
    for f in &facts {
        b.insert_base("OPS", f.clone()).unwrap();
    }
    b.propagate().unwrap();

    // The interners genuinely disagree on symbol assignment…
    assert!(b.interner().len() > a.interner().len());
    // …but every observable is identical, labeled nulls included.
    assert_eq!(a.relation_tuples("OPS"), b.relation_tuples("OPS"));
    assert_eq!(a.relation_tuples("O"), b.relation_tuples("O"));
    let o = a.relation_tuples("O");
    assert!(!o.is_empty() && o.iter().all(|t| t[1].is_labeled_null()));
}

/// Every peer's local instance, relation by relation, in a stable order.
fn all_instances(cdss: &Cdss) -> Vec<(String, String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for id in cdss.peer_ids() {
        let peer = cdss.peer(&id).unwrap();
        for rel in peer.instance().relations() {
            out.push((
                id.name().to_string(),
                rel.schema().name().to_string(),
                rel.to_vec(),
            ));
        }
    }
    out
}

fn seed_exchange(cdss: &mut Cdss) {
    let crete = PeerId::new("Crete");
    let beijing = PeerId::new("Beijing");
    // OPS rows published at Crete force the split mapping to invent
    // labeled nulls inside every σ1 peer's engine.
    cdss.publish_transaction(
        &crete,
        vec![
            Update::insert("OPS", tuple!["HIV", "gp120", "MRV"]),
            Update::insert("OPS", tuple!["HIV", "gp41", "AVG"]),
        ],
    )
    .unwrap();
    // An *explicit* labeled null published through the store exercises the
    // codec's structural Skolem encoding end to end.
    cdss.publish_transaction(
        &beijing,
        vec![Update::insert(
            "O",
            Tuple::new(vec![
                Value::str("Ebola"),
                Value::skolem("ext_oid", vec![Value::str("Ebola")]),
            ]),
        )],
    )
    .unwrap();
    for peer in ["Alaska", "Beijing", "Crete", "Dresden"] {
        cdss.reconcile(&PeerId::new(peer)).unwrap();
    }
}

#[test]
fn durable_store_roundtrips_interned_state_across_reopen() {
    let dir =
        std::env::temp_dir().join(format!("orchestra-intern-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        sync_policy: SyncPolicy::Always,
        ..DurableOptions::default()
    };

    // Run 1: publish + reconcile, snapshot the fixpoint, then "kill".
    let before = {
        let store = DurableStore::open_with(&dir, opts).unwrap();
        let mut cdss = demo::figure2_with_store(Box::new(store)).unwrap();
        seed_exchange(&mut cdss);
        all_instances(&cdss)
        // cdss (and its store handle) dropped here without further ado.
    };
    // Sanity: the exchange actually produced labeled nulls somewhere.
    assert!(
        before
            .iter()
            .any(|(_, _, ts)| ts.iter().any(Tuple::has_labeled_null)),
        "expected labeled nulls in the reconciled state"
    );

    // Run 2: recover from disk into a completely fresh CDSS (fresh
    // engines, fresh interners — symbol assignment starts from zero) and
    // replay the same exchange from the archived transactions.
    let store = DurableStore::open_with(&dir, opts).unwrap();
    assert!(store.len() > 0, "archive survived the reopen");
    let mut cdss = demo::figure2_with_store(Box::new(store)).unwrap();
    for peer in ["Alaska", "Beijing", "Crete", "Dresden"] {
        cdss.reconcile(&PeerId::new(peer)).unwrap();
    }
    let after = all_instances(&cdss);
    assert_eq!(before, after, "kill-and-reopen changed the fixpoint");

    // The recovered engines can keep exchanging: publish one more OPS row
    // and check it joins the previously recovered labeled-null world.
    cdss.publish_transaction(
        &PeerId::new("Crete"),
        vec![Update::insert("OPS", tuple!["HIV", "p24", "GGA"])],
    )
    .unwrap();
    cdss.reconcile(&PeerId::new("Alaska")).unwrap();
    let alaska = cdss.peer(&PeerId::new("Alaska")).unwrap();
    // Same organism ⇒ the recovered engine re-invents the *same* labeled
    // null for HIV's oid, so O still has one HIV row.
    let o_rows: Vec<Tuple> = alaska
        .instance()
        .relation("O")
        .unwrap()
        .iter()
        .filter(|t| t[0] == Value::str("HIV"))
        .cloned()
        .collect();
    assert_eq!(o_rows.len(), 1, "HIV oid null must be stable: {o_rows:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn archive_rebuild_applies_own_and_foreign_writes_in_causal_order() {
    use orchestra_reconcile::TrustPolicy;

    // P0 —identity→ P1 over a keyed kv schema. P0 publishes k=1,v=10;
    // P1 reconciles (accepting the translated write), modifies it to
    // v=20, and publishes. P1 then loses all local state and rebuilds
    // from the archive: its own later modify must win over the causally
    // earlier foreign insert, exactly as before the crash.
    let kv = DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
    let build = |store: Box<dyn UpdateStore>| {
        Cdss::builder()
            .peer("P0", kv.clone(), TrustPolicy::open(1))
            .peer("P1", kv.clone(), TrustPolicy::open(1))
            .identity("P0", "P1")
            .unwrap()
            .build_with_store(store)
            .unwrap()
    };
    let dir = std::env::temp_dir().join(format!("orchestra-causal-rebuild-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        sync_policy: SyncPolicy::Always,
        ..DurableOptions::default()
    };
    let p0 = PeerId::new("P0");
    let p1 = PeerId::new("P1");

    let expected = {
        let mut cdss = build(Box::new(DurableStore::open_with(&dir, opts).unwrap()));
        cdss.publish_transaction(&p0, vec![Update::insert("R", tuple![1, 10])])
            .unwrap();
        cdss.reconcile(&p1).unwrap();
        cdss.publish_transaction(&p1, vec![Update::modify("R", tuple![1, 10], tuple![1, 20])])
            .unwrap();
        cdss.peer(&p1)
            .unwrap()
            .instance()
            .relation("R")
            .unwrap()
            .to_vec()
    };
    assert_eq!(expected, vec![tuple![1, 20]]);

    // Rebuild from the archive; P1's reconcile replays the foreign insert
    // AND restores its own modify — causal order decides the final value.
    let mut cdss = build(Box::new(DurableStore::open_with(&dir, opts).unwrap()));
    cdss.reconcile(&p1).unwrap();
    let rebuilt = cdss
        .peer(&p1)
        .unwrap()
        .instance()
        .relation("R")
        .unwrap()
        .to_vec();
    assert_eq!(rebuilt, expected, "own later write must survive rebuild");

    let _ = std::fs::remove_dir_all(&dir);
}
