//! # orchestra-core
//!
//! The Orchestra collaborative data sharing system (CDSS) — the primary
//! contribution of Green, Karvounarakis, Taylor, Biton, Ives & Tannen,
//! *Orchestra: Facilitating Collaborative Data Sharing*, SIGMOD 2007.
//!
//! A CDSS is "a network of collaborators (participants or peers at
//! independent sites), each of which has a local database instance and may
//! be intermittently connected. Each site spends the majority of its time
//! operating in a locally autonomous mode … Upon an administrator's
//! request, the CDSS performs an update exchange" (§2). Update exchange is
//! `publish → translate → reconcile`:
//!
//! * **Publish** ([`Cdss::publish`]): a peer's local edits are diffed
//!   against its last published snapshot, grouped into a transaction whose
//!   antecedents are derived from the *provenance* of the tuples it
//!   modifies, and archived in the shared [update store].
//! * **Translate** (internal, [`translate`]): newly published transactions
//!   are pushed through the schema mapping program by each reconciling
//!   peer's incremental [datalog engine]; the per-transaction change sets
//!   in the peer's schema become candidate transactions, each update
//!   annotated with its origin peers (from provenance).
//! * **Reconcile** ([`Cdss::reconcile`]): candidates are filtered through
//!   the peer's [trust policy] and the greedy [reconciliation engine];
//!   accepted transactions are applied to the local instance. Same-
//!   priority conflicts are deferred until [`Cdss::resolve`].
//!
//! Each update exchange advances the system's logical clock.
//!
//! [update store]: orchestra_store::UpdateStore
//! [datalog engine]: orchestra_datalog::Engine
//! [trust policy]: orchestra_reconcile::TrustPolicy
//!
//! ## Quickstart
//!
//! ```
//! use orchestra_core::{Cdss, demo};
//! use orchestra_relational::tuple;
//! use orchestra_updates::{PeerId, Update};
//!
//! // The paper's Figure 2 network: Alaska, Beijing (Σ1), Crete, Dresden (Σ2).
//! let mut cdss = demo::figure2().unwrap();
//! let alaska = PeerId::new("Alaska");
//! let dresden = PeerId::new("Dresden");
//!
//! // Alaska inserts an organism/protein/sequence triple and publishes.
//! cdss.publish_transaction(&alaska, vec![
//!     Update::insert("O", tuple!["HIV", 1]),
//!     Update::insert("P", tuple!["gp120", 2]),
//!     Update::insert("S", tuple![1, 2, "MRVKEKYQ"]),
//! ]).unwrap();
//!
//! // Dresden reconciles: the triple is joined into its OPS table.
//! cdss.reconcile(&dresden).unwrap();
//! let ops = cdss.peer(&dresden).unwrap().instance().relation("OPS").unwrap();
//! assert!(ops.contains(&tuple!["HIV", "gp120", "MRVKEKYQ"]));
//! ```

pub mod cdss;
pub mod demo;
pub mod error;
pub mod mapping;
pub mod peer;
pub mod translate;

pub use cdss::{
    Cdss, CdssBuilder, CdssStats, ExchangeOptions, ExchangeOutcome, ReconcileReport, ResolveReport,
};
pub use error::CoreError;
pub use mapping::{identity_mappings, qualified_schema, qualify};
pub use orchestra_datalog::EvalOptions;
pub use peer::Peer;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
