//! The CDSS system object: peers + mappings + store + logical clock.

use crate::error::CoreError;
use crate::mapping::qualified_schema;
use crate::peer::Peer;
use crate::Result;
use orchestra_datalog::{Engine, EvalOptions, Rule, Tgd};
use orchestra_reconcile::{ReconcileOutcome, ResolveOutcome, TrustPolicy};
use orchestra_relational::{DatabaseSchema, Tuple, WorkerPool};
use orchestra_store::{
    CursorBound, FetchCursor, InMemoryStore, StoreError, StoreStats, UpdateStore,
    DEFAULT_PAGE_LIMIT,
};
use orchestra_updates::{Epoch, LogicalClock, PeerId, Transaction, TxnId, Update};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Tunables for one update exchange ([`Cdss::reconcile_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOptions {
    /// Maximum transactions materialized per archive page: the exchange
    /// loops page by page, so its peak memory is bounded by this limit
    /// regardless of how much history the peer has missed.
    pub page_limit: usize,
    /// Override the peer's translation-engine evaluation thread count
    /// before this exchange runs (`None` = leave it as built). The
    /// override sticks on the peer — set it once per peer, or on every
    /// exchange, interchangeably. Results are identical at any thread
    /// count (the engine's 1-vs-N parity guarantee); only wall-clock
    /// changes. System-wide defaults belong on
    /// [`CdssBuilder::eval_threads`] or `ORCHESTRA_EVAL_THREADS`.
    pub eval_threads: Option<usize>,
}

impl Default for ExchangeOptions {
    fn default() -> Self {
        ExchangeOptions {
            page_limit: DEFAULT_PAGE_LIMIT,
            eval_threads: None,
        }
    }
}

/// Decision summary of one exchange, by transaction **id**.
///
/// Ids only, deliberately: accepted payloads are translated and applied
/// page by page, then dropped, so a full-history catch-up never retains
/// them — the report must not reintroduce the unbounded
/// `Vec<Transaction>` the paged exchange exists to avoid. Fetch a
/// payload back through [`orchestra_store::UpdateStore::fetch`], or a
/// decision through [`Peer::decision`](crate::Peer::decision), if needed.
#[derive(Debug, Clone, Default)]
pub struct ExchangeOutcome {
    /// Accepted and applied this exchange.
    pub accepted: Vec<TxnId>,
    /// Rejected this exchange (trust policy or conflict with history).
    pub rejected: Vec<TxnId>,
    /// Deferred this exchange (conflicts awaiting [`Cdss::resolve`],
    /// missing antecedents).
    pub deferred: Vec<TxnId>,
}

/// What one [`Cdss::reconcile`] call did.
#[derive(Debug, Clone)]
pub struct ReconcileReport {
    /// The epoch this exchange advanced to (unchanged when the exchange
    /// found no work — idle reconciles no longer inflate the clock).
    pub epoch: Epoch,
    /// Reachable transactions fetched from the store across all pages.
    pub fetched: usize,
    /// Candidates produced by translation (excludes the peer's own).
    pub candidates: usize,
    /// The reconciliation decisions.
    pub outcome: ExchangeOutcome,
    /// Tuple-level updates applied to the local instance.
    pub applied_updates: usize,
    /// Archive pages scanned by this exchange.
    pub pages: usize,
    /// Unreachable payloads this peer still needs that the scan skipped
    /// past (reachable later history was still processed where safe).
    pub skipped_unavailable: usize,
    /// Reachable transactions held back because they causally depend on a
    /// skipped one; they are re-fetched once the gap heals.
    pub held_back: usize,
    /// The first unreachable transaction, if any: the peer's resume
    /// cursor is frozen at this position, so the next exchange retries it
    /// before consuming anything newer. `None` = fully caught up.
    pub blocked_on: Option<TxnId>,
    /// True when the archive itself became unreachable (a dead or flaky
    /// network peer — `fetch_page` failed outright rather than reporting
    /// per-payload gaps). The exchange kept whatever progress it made and
    /// froze the resume cursor at the first unfetched position; the next
    /// exchange retries from there.
    pub unreachable: bool,
}

/// What one [`Cdss::resolve`] call did.
#[derive(Debug, Clone)]
pub struct ResolveReport {
    /// The resolution decisions.
    pub outcome: ResolveOutcome,
    /// Tuple-level updates applied to the local instance.
    pub applied_updates: usize,
}

/// Aggregate system counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CdssStats {
    /// Current epoch value.
    pub epoch: u64,
    /// Transactions published across all peers.
    pub published_txns: u64,
    /// Store counters.
    pub store: StoreStats,
}

/// Builder for a [`Cdss`].
#[derive(Debug, Default)]
pub struct CdssBuilder {
    peers: Vec<(PeerId, DatabaseSchema, TrustPolicy)>,
    mappings: Vec<Tgd>,
    eval: EvalOptions,
}

impl CdssBuilder {
    /// Add a peer with its local schema and trust policy.
    pub fn peer(
        mut self,
        name: impl AsRef<str>,
        schema: DatabaseSchema,
        policy: TrustPolicy,
    ) -> Self {
        self.peers
            .push((PeerId::new(name.as_ref()), schema, policy));
        self
    }

    /// Add a schema mapping (over qualified `"Peer.Relation"` names).
    pub fn mapping(mut self, tgd: Tgd) -> Self {
        self.mappings.push(tgd);
        self
    }

    /// Set the evaluation thread count for every peer's translation
    /// engine (default: `ORCHESTRA_EVAL_THREADS`, falling back to the
    /// machine's available parallelism). With more than one thread, all
    /// peer engines share **one** worker pool — exchanges run one peer
    /// at a time, so a per-peer pool would only multiply idle threads.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval.threads = threads.max(1);
        self
    }

    /// Set all evaluation tunables (threads, shards, parallel threshold)
    /// for every peer's translation engine.
    pub fn eval_options(mut self, eval: EvalOptions) -> Self {
        self.eval = eval;
        self
    }

    /// Add bidirectional identity mappings between two peers added
    /// earlier, which must share a schema (the paper's `MA↔B`, `MC↔D`).
    pub fn identity(mut self, a: impl AsRef<str>, b: impl AsRef<str>) -> Result<Self> {
        let a = PeerId::new(a.as_ref());
        let b = PeerId::new(b.as_ref());
        let schema_a = self
            .peers
            .iter()
            .find(|(id, _, _)| *id == a)
            .map(|(_, s, _)| s.clone())
            .ok_or_else(|| CoreError::UnknownPeer(a.name().to_string()))?;
        let schema_b = self
            .peers
            .iter()
            .find(|(id, _, _)| *id == b)
            .map(|(_, s, _)| s.clone())
            .ok_or_else(|| CoreError::UnknownPeer(b.name().to_string()))?;
        if schema_a != schema_b {
            return Err(CoreError::Config(format!(
                "identity mappings require a shared schema ({} vs {})",
                schema_a.name(),
                schema_b.name()
            )));
        }
        self.mappings
            .extend(crate::mapping::identity_mappings(&a, &b, &schema_a)?);
        Ok(self)
    }

    /// Build with the default centralized in-memory store.
    pub fn build(self) -> Result<Cdss> {
        self.build_with_store(Box::new(InMemoryStore::new()))
    }

    /// Build with a caller-provided store (e.g. the simulated DHT).
    pub fn build_with_store(self, store: Box<dyn UpdateStore>) -> Result<Cdss> {
        self.build_with_shared(Arc::from(store))
    }

    /// Build with a store the caller keeps a handle on — what a gossiping
    /// node needs: the mesh layer serves and merges the same archive this
    /// CDSS reconciles from.
    pub fn build_with_shared(self, store: Arc<dyn UpdateStore>) -> Result<Cdss> {
        if self.peers.is_empty() {
            return Err(CoreError::Config("a CDSS needs at least one peer".into()));
        }
        // Combined namespace: every peer's relations, qualified.
        let mut combined = DatabaseSchema::new("cdss");
        for (id, schema, _) in &self.peers {
            for rel in qualified_schema(id, schema)? {
                combined
                    .add_relation(rel)
                    .map_err(|_| CoreError::DuplicatePeer(id.name().to_string()))?;
            }
        }
        // Compile the mapping program once.
        let mut rules: Vec<Rule> = Vec::new();
        for tgd in &self.mappings {
            rules.extend(tgd.compile()?);
        }
        // One incremental engine per peer (peers see different prefixes of
        // the published history), all sharing one **lazy** worker-pool
        // slot — a CDSS exchanges for one peer at a time, so per-peer
        // pools would only park threads, and workloads that never cross
        // the parallel threshold spawn none at all.
        let pool_slot = (self.eval.threads > 1)
            .then(|| std::sync::Arc::new(std::sync::OnceLock::<std::sync::Arc<WorkerPool>>::new()));
        let mut peers = BTreeMap::new();
        for (id, schema, policy) in self.peers {
            let mut engine =
                Engine::with_options(combined.clone(), rules.clone(), true, self.eval)?;
            if let Some(slot) = &pool_slot {
                engine.set_shared_pool_slot(std::sync::Arc::clone(slot));
            }
            if peers.contains_key(&id) {
                return Err(CoreError::DuplicatePeer(id.name().to_string()));
            }
            peers.insert(id.clone(), Peer::new(id, schema, policy, engine));
        }
        // Start the clock at or past everything already archived: a CDSS
        // attached to a populated (e.g. durable) store must not publish
        // into epochs behind existing history — the store would reject
        // them as stale, and cursors would never see them.
        let mut clock = LogicalClock::new();
        if let Some(latest) = store.latest_epoch() {
            clock.observe(latest);
        }
        Ok(Cdss {
            peers,
            mappings: self.mappings,
            store,
            clock,
            published_txns: 0,
        })
    }
}

/// The collaborative data sharing system.
pub struct Cdss {
    peers: BTreeMap<PeerId, Peer>,
    mappings: Vec<Tgd>,
    store: Arc<dyn UpdateStore>,
    clock: LogicalClock,
    published_txns: u64,
}

impl Cdss {
    /// Start building a CDSS.
    pub fn builder() -> CdssBuilder {
        CdssBuilder::default()
    }

    /// Borrow a peer.
    pub fn peer(&self, id: &PeerId) -> Result<&Peer> {
        self.peers
            .get(id)
            .ok_or_else(|| CoreError::UnknownPeer(id.to_string()))
    }

    /// Mutably borrow a peer (local edits happen here).
    pub fn peer_mut(&mut self, id: &PeerId) -> Result<&mut Peer> {
        self.peers
            .get_mut(id)
            .ok_or_else(|| CoreError::UnknownPeer(id.to_string()))
    }

    /// All peer ids, in order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers.keys().cloned().collect()
    }

    /// The mapping program.
    pub fn mappings(&self) -> &[Tgd] {
        &self.mappings
    }

    /// The shared update store.
    pub fn store(&self) -> &dyn UpdateStore {
        &*self.store
    }

    /// A second handle on the update store — for serving it over the
    /// network or merging gossip into it while this CDSS keeps
    /// reconciling from it.
    pub fn shared_store(&self) -> Arc<dyn UpdateStore> {
        Arc::clone(&self.store)
    }

    /// Tell the CDSS that transactions spanning `[min_epoch, max_epoch]`
    /// were merged into the archive *behind its back* (an anti-entropy
    /// absorb). Reconciliation assumes the archive only grows past each
    /// peer's frontier; an absorb can backfill epochs a cursor already
    /// passed, so every peer whose frontier is beyond `min_epoch` is
    /// rewound to scan from there again — the `ingested` set makes the
    /// rescan skip everything already applied, so nothing is applied
    /// twice. The clock also observes `max_epoch`: later publishes must
    /// land past everything archived.
    pub fn note_absorbed(&mut self, min_epoch: Epoch, max_epoch: Epoch) {
        self.clock.observe(max_epoch);
        let backfill = FetchCursor::at_epoch(min_epoch);
        for peer in self.peers.values_mut() {
            let frontier = peer
                .resume
                .clone()
                .unwrap_or_else(|| FetchCursor::after_epoch(peer.last_epoch));
            let rewound = min_cursor(frontier.clone(), backfill.clone());
            if rewound != frontier {
                peer.resume = Some(rewound);
                // Held-back ids and the scanned high-water describe the
                // pre-absorb scan; the rescan re-derives both.
                peer.held.clear();
                peer.scanned_hw = None;
            }
        }
    }

    /// The relations this CDSS's peers need history for, as
    /// owner-qualified `"Peer.Relation"` names: every local relation of
    /// every peer, closed backwards over the mapping program — if a
    /// mapping derives into a relation we need, everything its body reads
    /// is needed too, transitively. A mesh node uses this as its interest
    /// set: updates to any other relation can never reach any local
    /// instance here, so there is no reason to store or ship them.
    pub fn interest_set(&self) -> Vec<String> {
        self.interest_set_for(&self.peer_ids())
            // analyze: allow(panic) -- peer_ids() enumerates self.peers, so every id resolves
            .expect("own peer ids are known")
    }

    /// [`interest_set`](Cdss::interest_set) restricted to a subset of
    /// peers — what a mesh node *hosting* only some of the declared
    /// peers needs: the schema and mapping program are global knowledge,
    /// but only the hosted peers' instances live here.
    pub fn interest_set_for(&self, peers: &[PeerId]) -> Result<Vec<String>> {
        let mut need: BTreeSet<String> = BTreeSet::new();
        for id in peers {
            let peer = self.peer(id)?;
            need.extend(
                peer.schema()
                    .relations()
                    .map(|r| crate::mapping::qualify(id, r.name())),
            );
        }
        loop {
            let mut grew = false;
            for tgd in &self.mappings {
                if tgd.head.iter().any(|h| need.contains(h.relation.as_ref())) {
                    for atom in &tgd.body {
                        grew |= need.insert(atom.relation.to_string());
                    }
                }
            }
            if !grew {
                return Ok(need.into_iter().collect());
            }
        }
    }

    /// The current logical epoch.
    pub fn current_epoch(&self) -> Epoch {
        self.clock.current()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CdssStats {
        CdssStats {
            epoch: self.clock.current().value(),
            published_txns: self.published_txns,
            store: self.store.stats(),
        }
    }

    /// Publish a peer's pending local edits (diff against the last
    /// published snapshot) as **one** transaction. Returns `None` when
    /// there is nothing to publish. Use [`publish_transaction`] for
    /// explicit transaction boundaries.
    ///
    /// [`publish_transaction`]: Cdss::publish_transaction
    pub fn publish(&mut self, peer_id: &PeerId) -> Result<Option<TxnId>> {
        let peer = self.peer(peer_id)?;
        let delta = peer.published_snapshot.diff(&peer.instance)?;
        if delta.is_empty() {
            return Ok(None);
        }
        // Pair deletions and insertions on the same key into modifies.
        let mut updates: Vec<Update> = Vec::new();
        for rel_schema in peer.schema.relations().cloned().collect::<Vec<_>>() {
            let name = rel_schema.name();
            let dels = delta.deletions.get(name).cloned().unwrap_or_default();
            let inss = delta.insertions.get(name).cloned().unwrap_or_default();
            let mut dels_by_key: BTreeMap<Tuple, Tuple> = dels
                .into_iter()
                .map(|t| (rel_schema.key_of(&t), t))
                .collect();
            for ins in inss {
                let key = rel_schema.key_of(&ins);
                match dels_by_key.remove(&key) {
                    Some(old) => updates.push(Update::modify(name, old, ins)),
                    None => updates.push(Update::insert(name, ins)),
                }
            }
            for (_, old) in dels_by_key {
                updates.push(Update::delete(name, old));
            }
        }
        let ids = self.publish_batch(peer_id, vec![updates])?;
        Ok(ids.into_iter().next())
    }

    /// Apply updates to the peer's local instance and publish them as one
    /// transaction (explicit transaction boundary — the unit the CDSS
    /// propagates, translates, and reconciles atomically).
    pub fn publish_transaction(&mut self, peer_id: &PeerId, updates: Vec<Update>) -> Result<TxnId> {
        let ids = self.publish_transactions(peer_id, vec![updates])?;
        // analyze: allow(panic) -- publish_transactions returns one id per input batch and exactly one batch is passed
        Ok(ids.into_iter().next().expect("one txn"))
    }

    /// Apply and publish several transactions in a single epoch.
    pub fn publish_transactions(
        &mut self,
        peer_id: &PeerId,
        txns: Vec<Vec<Update>>,
    ) -> Result<Vec<TxnId>> {
        {
            let peer = self.peer_mut(peer_id)?;
            for updates in &txns {
                for u in updates {
                    let rel = peer.schema.relation(u.relation())?;
                    u.validate(rel).map_err(CoreError::from)?;
                    u.apply(&mut peer.instance).map_err(CoreError::from)?;
                }
            }
        }
        self.publish_batch(peer_id, txns)
    }

    /// Core publication path: stamp ids and provenance-derived
    /// antecedents, archive in the store, ingest into the peer's own
    /// engine, refresh the published snapshot.
    fn publish_batch(
        &mut self,
        peer_id: &PeerId,
        txn_updates: Vec<Vec<Update>>,
    ) -> Result<Vec<TxnId>> {
        let epoch = self.clock.advance();
        let peer = self
            .peers
            .get_mut(peer_id)
            .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
        let mut built: Vec<Transaction> = Vec::new();
        for updates in txn_updates {
            if updates.is_empty() {
                continue;
            }
            // Antecedents from provenance of the versions being read;
            // sequential ingestion lets later transactions in the batch
            // depend on earlier ones.
            let ants: BTreeSet<TxnId> = peer.derive_antecedents(&updates)?;
            peer.next_seq += 1;
            let id = TxnId::new(peer.id.clone(), peer.next_seq);
            let txn = Transaction::new(id, epoch, updates).with_antecedents(ants);
            txn.validate(&peer.schema).map_err(CoreError::from)?;
            peer.ingest_and_translate(&txn)?;
            // The peer's own transaction counts as accepted history so
            // foreign dependents can resolve their antecedents against it.
            peer.reconciler.note_local(&txn)?;
            built.push(txn);
        }
        if built.is_empty() {
            return Ok(vec![]);
        }
        self.store.publish(epoch, built.clone())?;
        self.published_txns += built.len() as u64;
        let peer = self
            .peers
            .get_mut(peer_id)
            .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
        peer.published_snapshot = peer.instance.clone();
        Ok(built.into_iter().map(|t| t.id).collect())
    }

    /// Perform update exchange for one peer: page through newly published
    /// transactions, translate them through the mapping program, reconcile
    /// under the peer's trust policy, and apply accepted transactions to
    /// the local instance. Equivalent to [`reconcile_with`] under
    /// [`ExchangeOptions::default`].
    ///
    /// [`reconcile_with`]: Cdss::reconcile_with
    pub fn reconcile(&mut self, peer_id: &PeerId) -> Result<ReconcileReport> {
        self.reconcile_with(peer_id, ExchangeOptions::default())
    }

    /// Update exchange with explicit tunables.
    ///
    /// The exchange loops through the archive in bounded pages (never
    /// materializing more than [`ExchangeOptions::page_limit`]
    /// transactions at a time) and makes **partial progress** under
    /// degraded availability: an unreachable payload no longer fails the
    /// call. Instead the peer's resume cursor freezes *at the gap* (so a
    /// later exchange retries it once a replica returns), reachable
    /// history keeps flowing — except transactions causally dependent on
    /// the gap, which are held back — and the report records the blocking
    /// transaction and skip counts. The logical clock only advances when
    /// the exchange actually did work, so idle reconcile loops no longer
    /// inflate epochs.
    ///
    /// **Conflict window**: same-priority conflicting claims observed in
    /// one page defer both for [`Cdss::resolve`] (§3) — the steady-state
    /// case, since any exchange of ≤ `page_limit` transactions is one
    /// page. Claims split across pages of a long catch-up follow the same
    /// streaming semantics as claims split across separate exchanges:
    /// the first claim *observed* is accepted, the later one is rejected
    /// against accepted history — normally `(epoch, id)` order, though
    /// under partial availability a claim held back behind a gap is
    /// observed only after the gap heals, as if published later. Conflict
    /// decisions are therefore per-peer and observation-order dependent,
    /// as they inherently are across exchanges in an intermittently
    /// connected CDSS. Raise `page_limit` when a catch-up must treat its
    /// whole history as one concurrent window (at proportional memory
    /// cost).
    pub fn reconcile_with(
        &mut self,
        peer_id: &PeerId,
        opts: ExchangeOptions,
    ) -> Result<ReconcileReport> {
        // One trace per exchange: page spans below (and, through a
        // RemoteStore backend, the serving peer's spans) share this id.
        let _trace = orchestra_obs::trace_mint();
        let page_limit = opts.page_limit.max(1);
        if let Some(threads) = opts.eval_threads {
            // Thread the option through to the peer's translation engine
            // (sticky; results are thread-count-invariant by the engine's
            // parity guarantee).
            self.peer_mut(peer_id)?.engine.set_threads(threads);
        }
        let (prev_last_epoch, prev_resume, mut cursor) = {
            let peer = self.peer(peer_id)?;
            let cursor = peer
                .resume
                .clone()
                .unwrap_or_else(|| FetchCursor::after_epoch(peer.last_epoch));
            (peer.last_epoch, peer.resume.clone(), cursor)
        };

        let mut outcome = ExchangeOutcome::default();
        let mut fetched = 0usize;
        let mut candidates = 0usize;
        let mut applied = 0usize;
        let mut pages = 0usize;
        let mut skipped = 0usize;
        let mut held_back = 0usize;
        let mut processed = 0usize;
        let mut blocked: Option<(Epoch, TxnId)> = None;
        // Transactions this peer must not consume yet: skipped gaps plus
        // (transitively) everything reachable that depends on one. Scan
        // order is (epoch, id), which well-formed publication keeps
        // causal, so a dependent is always examined after its antecedent
        // has entered this set. Persisted on the peer while blocked.
        let mut held: BTreeSet<TxnId> = BTreeSet::new();
        // Reachable transactions whose antecedents may still be ahead in
        // scan order (forward references): retried with each later page,
        // flushed through the reconciler after the scan completes.
        let mut parked: Vec<Transaction> = Vec::new();
        let mut max_seen: Option<Epoch> = None;
        let mut hw: Option<(Epoch, TxnId)> = None;
        let observe = |max_seen: &mut Option<Epoch>, e: Epoch| {
            *max_seen = Some(max_seen.map_or(e, |m| m.max(e)));
        };

        // Blocked from a previous exchange: cheaply probe the frozen gap
        // first. If it is *still* unreachable, keep the persisted held
        // set and jump the scan to the high-water mark — only new history
        // gets fetched, instead of re-cloning the whole suffix past the
        // gap on every poll. If the gap healed, fall through to a full
        // rescan from the gap (the held set is rebuilt as it goes).
        if prev_resume.is_some() {
            let probe = match self.store.fetch_page(&cursor, 1) {
                Ok(p) => p,
                Err(StoreError::Unavailable { .. }) => {
                    // The archive itself is unreachable (dead or flaky
                    // network peer) while this peer is already blocked:
                    // leave every durable field frozen exactly as it was
                    // and report the outage. The frozen cursor still
                    // names the gap, so `blocked_on` is preserved.
                    let blocked_on = match cursor.bound() {
                        CursorBound::At(id) => Some(id.clone()),
                        _ => None,
                    };
                    return Ok(ReconcileReport {
                        epoch: self.clock.current(),
                        fetched: 0,
                        candidates: 0,
                        outcome: ExchangeOutcome::default(),
                        applied_updates: 0,
                        pages: 0,
                        skipped_unavailable: 0,
                        held_back: 0,
                        blocked_on,
                        unreachable: true,
                    });
                }
                Err(e) => return Err(e.into()),
            };
            pages += 1;
            let peer = self
                .peers
                .get_mut(peer_id)
                .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
            match probe.unavailable.first() {
                Some((ep, id)) if !peer.ingested.contains(id) => {
                    observe(&mut max_seen, *ep);
                    blocked = Some((*ep, id.clone()));
                    skipped += 1;
                    if id.peer == *peer_id {
                        // Archive rebuild with the peer's own txn as the
                        // gap: its id is archived regardless, so the next
                        // publish must not reuse it.
                        peer.next_seq = peer.next_seq.max(id.seq);
                    }
                    held = peer.held.clone();
                    hw = peer.scanned_hw.clone();
                    cursor = match &peer.scanned_hw {
                        Some((e, last)) => FetchCursor::after_txn(*e, last.clone()),
                        // A blocked exchange always scanned at least the
                        // gap itself, so this arm is unreachable in
                        // practice; rescan from the gap to stay safe.
                        None => cursor,
                    };
                }
                _ => held.clear(), // Gap healed (or ingested): full rescan.
            }
        }

        let mut unreachable = false;
        loop {
            let _page_span = orchestra_obs::span!(
                "reconcile.page",
                peer = peer_id,
                epoch = self.clock.current()
            );
            let page = match self.store.fetch_page(&cursor, page_limit) {
                Ok(p) => p,
                Err(StoreError::Unavailable { .. }) => {
                    // Transport outage mid-exchange: keep the progress
                    // already applied and freeze the resume cursor at the
                    // first unfetched position (below), so the next
                    // exchange picks up exactly at the cut.
                    unreachable = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            };
            let next = page.next_cursor;
            pages += 1;
            fetched += page.txns.len();
            // Pages come in (epoch, id) order: the last reachable
            // transaction carries the page's highest reachable epoch, and
            // the later of the two trailing positions is the page's
            // high-water mark.
            if let Some(t) = page.txns.last() {
                observe(&mut max_seen, t.epoch);
                let pos = (t.epoch, t.id.clone());
                hw = Some(hw.map_or(pos.clone(), |h| h.max(pos)));
            }
            if let Some(u) = page.unavailable.last() {
                hw = Some(hw.map_or(u.clone(), |h| h.max(u.clone())));
            }
            let peer = self
                .peers
                .get_mut(peer_id)
                .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
            for (ep, id) in &page.unavailable {
                observe(&mut max_seen, *ep);
                if peer.ingested.contains(id) {
                    continue; // Already ingested earlier — not a gap.
                }
                if blocked.is_none() {
                    blocked = Some((*ep, id.clone()));
                }
                if id.peer == *peer_id {
                    // Archive rebuild with the peer's own txn unreachable:
                    // the id is archived regardless, so the next publish
                    // must not reuse it (the store would reject it as a
                    // duplicate after the local instance was mutated).
                    peer.next_seq = peer.next_seq.max(id.seq);
                }
                held.insert(id.clone());
                skipped += 1;
            }
            // Previously parked forward references re-enter with this
            // page: if their antecedents are in it, causal_order slots
            // them right after.
            let mut batch = page.txns;
            batch.append(&mut parked);
            let r = process_page(peer, peer_id, batch, &mut held, Some(&mut parked))?;
            candidates += r.candidates;
            applied += r.applied;
            held_back += r.held_back;
            processed += r.processed;
            // Keep ids, drop payloads: the page's accepted transactions
            // are already applied, and retaining them across a long
            // catch-up would grow with history instead of page size.
            outcome
                .accepted
                .extend(r.outcome.accepted.into_iter().map(|t| t.id));
            outcome.rejected.extend(r.outcome.rejected);
            outcome.deferred.extend(r.outcome.deferred);
            match next {
                Some(c) => cursor = c,
                None => break,
            }
        }

        // Forward references that never resolved: their antecedents are
        // not archived (ghosts). Run them through the reconciler so they
        // get the deferred decision the one-shot exchange gave them.
        // Except when the archive went unreachable mid-scan: the unseen
        // pages may hold exactly those antecedents, and deferrals are
        // sticky — so instead the resume position below rewinds to cover
        // the parked transactions and they are re-fetched after the cut.
        if !parked.is_empty() && !unreachable {
            let peer = self
                .peers
                .get_mut(peer_id)
                .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
            let batch = std::mem::take(&mut parked);
            let r = process_page(peer, peer_id, batch, &mut held, None)?;
            candidates += r.candidates;
            applied += r.applied;
            held_back += r.held_back;
            processed += r.processed;
            outcome
                .accepted
                .extend(r.outcome.accepted.into_iter().map(|t| t.id));
            outcome.rejected.extend(r.outcome.rejected);
            outcome.deferred.extend(r.outcome.deferred);
        }

        let peer = self
            .peers
            .get_mut(peer_id)
            .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
        // Where the next exchange must resume: the first payload gap if
        // one was found — rewound further to cover any parked forward
        // reference whose final pass never ran because the archive went
        // unreachable — or, on a transport cut with no gap, the first
        // unfetched page of the interrupted scan.
        let mut freeze = blocked
            .as_ref()
            .map(|(e, id)| FetchCursor::at_txn(*e, id.clone()));
        if unreachable {
            let parked_min = parked
                .iter()
                .map(|t| (t.epoch, t.id.clone()))
                .min()
                .map(|(e, id)| FetchCursor::at_txn(e, id));
            for candidate in [parked_min, Some(cursor.clone())].into_iter().flatten() {
                freeze = Some(match freeze.take() {
                    Some(f) => min_cursor(f, candidate),
                    None => candidate,
                });
            }
        }
        match &freeze {
            Some(at) => {
                // Freeze durable progress at the blocking position: the
                // next exchange re-probes exactly this position first.
                // Reachable work past it was already applied where safe;
                // the held set and high-water mark persist so the next
                // poll only probes the gap and fetches history it has
                // not seen.
                peer.resume = Some(at.clone());
                let caught_up = Epoch::new(at.epoch().value().saturating_sub(1));
                peer.last_epoch = peer.last_epoch.max(caught_up);
                peer.held = held;
                peer.scanned_hw = hw.max(peer.scanned_hw.take());
            }
            None => {
                peer.resume = None;
                peer.held.clear();
                peer.scanned_hw = None;
                if let Some(m) = max_seen {
                    peer.last_epoch = peer.last_epoch.max(m);
                }
            }
        }
        // §2: the clock advances per update exchange — but only exchanges
        // that did something. A blocked retry that learns nothing new and
        // an idle poll both leave the clock alone, so polling loops no
        // longer inflate epochs (and epoch-indexed snapshots) unboundedly.
        let progress =
            processed > 0 || peer.last_epoch != prev_last_epoch || peer.resume != prev_resume;
        if let Some(m) = max_seen {
            // Keep the system clock ahead of everything in the archive, so
            // a CDSS rebuilt from a durable store never restamps epochs.
            self.clock.observe(m);
        }
        let epoch = if progress {
            self.clock.advance()
        } else {
            self.clock.current()
        };
        Ok(ReconcileReport {
            epoch,
            fetched,
            candidates,
            outcome,
            applied_updates: applied,
            pages,
            skipped_unavailable: skipped,
            held_back,
            blocked_on: blocked.map(|(_, id)| id),
            unreachable,
        })
    }

    /// Reconcile every peer once, in name order. Convenience for tests,
    /// examples and benchmarks; returns the per-peer reports.
    pub fn reconcile_all(&mut self) -> Result<Vec<(PeerId, ReconcileReport)>> {
        let ids = self.peer_ids();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let report = self.reconcile(&id)?;
            out.push((id, report));
        }
        Ok(out)
    }

    /// Manually resolve deferred conflicts at a peer in favor of `winner`
    /// (§3: the winner's deferred dependents apply automatically; the
    /// losers' dependents are rejected).
    pub fn resolve(&mut self, peer_id: &PeerId, winner: &TxnId) -> Result<ResolveReport> {
        let peer = self
            .peers
            .get_mut(peer_id)
            .ok_or_else(|| CoreError::UnknownPeer(peer_id.to_string()))?;
        let outcome = peer.reconciler.resolve(winner)?;
        let mut applied = 0usize;
        for txn in &outcome.accepted {
            for u in &txn.updates {
                u.apply(&mut peer.instance).map_err(CoreError::from)?;
                u.apply(&mut peer.published_snapshot)
                    .map_err(CoreError::from)?;
                applied += 1;
            }
        }
        Ok(ResolveReport {
            outcome,
            applied_updates: applied,
        })
    }

    /// Sanity helper for tests and examples: the set of relations a tuple
    /// appears in across all peers' *local* instances, qualified.
    pub fn locate(&self, tuple: &Tuple) -> Vec<String> {
        let mut out = Vec::new();
        for (id, peer) in &self.peers {
            for rel in peer.instance.relations() {
                if rel.iter().any(|t| t == tuple) {
                    out.push(format!("{}.{}", id.name(), rel.schema().name()));
                }
            }
        }
        out
    }
}

/// What [`process_page`] did with one page of archive transactions.
struct PageResult {
    candidates: usize,
    applied: usize,
    held_back: usize,
    /// Transactions actually worked on (not previously ingested, not
    /// held back) — the exchange's "did anything happen" signal.
    processed: usize,
    outcome: ReconcileOutcome,
}

/// Run one fetched page through a peer's exchange pipeline: filter out
/// transactions already ingested, hold back anything causally downstream
/// of a skipped gap, park forward references for a later page, translate
/// the rest, reconcile, and apply accepted work to the local instance.
/// Page-sized batches keep the exchange's peak memory independent of how
/// much history the peer missed; the reconciler's persistent decisions
/// make per-page passes equivalent to the old whole-history pass.
fn process_page(
    peer: &mut Peer,
    peer_id: &PeerId,
    txns: Vec<Transaction>,
    held: &mut BTreeSet<TxnId>,
    mut park: Option<&mut Vec<Transaction>>,
) -> Result<PageResult> {
    // New transactions, in causal order (in-page antecedents first). The
    // page is already an owned copy from the store — filter it in place
    // instead of cloning every transaction a second time.
    let fresh: Vec<Transaction> = txns
        .into_iter()
        .filter(|t| !peer.ingested.contains(&t.id))
        .collect();
    let ordered = causal_order(fresh);

    let mut kept: Vec<Transaction> = Vec::with_capacity(ordered.len());
    let mut held_back = 0usize;
    let mut candidates = Vec::new();
    let mut restored_own: BTreeSet<TxnId> = BTreeSet::new();
    for txn in ordered {
        if txn.antecedents.iter().any(|a| held.contains(a)) {
            // Depends on an unavailable gap (directly or through another
            // held transaction): not safe to consume yet. The frozen
            // resume cursor guarantees it is re-fetched after the gap
            // heals, in causal order.
            if txn.id.peer == *peer_id {
                // A held-back own transaction (archive rebuild): its id
                // is archived regardless, so never reuse it.
                peer.next_seq = peer.next_seq.max(txn.id.seq);
            }
            held.insert(txn.id.clone());
            held_back += 1;
            continue;
        }
        if let Some(p) = park.as_deref_mut() {
            // An antecedent that is neither ingested nor decided can be a
            // forward reference: a transaction later in scan order (CDSS
            // publication keeps (epoch, id) order causal, but a direct
            // store publisher may interleave peers within one epoch).
            // Feeding it to the reconciler now would record a *sticky*
            // deferral, so park the transaction and retry it with the
            // next page — the final pass (park = None) lets genuinely
            // ghost antecedents reach the reconciler and defer, as the
            // one-shot exchange always did.
            let forward_ref = txn
                .antecedents
                .iter()
                .any(|a| !peer.ingested.contains(a) && peer.reconciler.decision(a).is_none());
            if forward_ref {
                p.push(txn);
                continue;
            }
        }
        let own = txn.id.peer == *peer_id;
        if let Some(c) = peer.ingest_and_translate(&txn)? {
            candidates.push(c);
        } else if own {
            // One of this peer's own transactions arriving *from the
            // archive* — possible only after the peer lost its local
            // state and rebuilt from the shared store (normally its own
            // transactions are ingested at publish time and filtered
            // out above). Restore what publishing had established: the
            // accepted decision (so foreign dependents can resolve
            // their antecedents) and the sequence counter (so the next
            // publish doesn't reuse an archived transaction id). The
            // local effects are applied below, interleaved with
            // accepted foreign transactions in causal order.
            peer.reconciler.note_local(&txn)?;
            peer.next_seq = peer.next_seq.max(txn.id.seq);
            restored_own.insert(txn.id.clone());
        }
        kept.push(txn);
    }
    let n_candidates = candidates.len();
    let processed = kept.len();

    // Split borrows: reconciler and policy are disjoint fields.
    let outcome = {
        let Peer {
            reconciler, policy, ..
        } = &mut *peer;
        reconciler.reconcile(candidates, policy)?
    };

    let mut applied = 0usize;
    let mut apply = |peer: &mut Peer, txn: &Transaction| -> Result<()> {
        for u in &txn.updates {
            u.apply(&mut peer.instance).map_err(CoreError::from)?;
            u.apply(&mut peer.published_snapshot)
                .map_err(CoreError::from)?;
            applied += 1;
        }
        Ok(())
    };
    if restored_own.is_empty() {
        // Normal path: accepted transactions in dependency order.
        for txn in &outcome.accepted {
            apply(&mut *peer, txn)?;
        }
    } else {
        // Archive rebuild: the peer's own restored transactions and
        // newly accepted foreign ones must be applied in one causal
        // sequence — applying the own writes first would let a
        // causally *earlier* foreign write to the same key clobber
        // the peer's own later version. Accepted transactions from
        // earlier epochs' pools (not in this page) are causally
        // older still and go first.
        // Accepted foreign transactions are applied in their
        // *translated* form (the reconciler's copies); the peer's own
        // restored ones are already in its schema.
        let accepted_by_id: BTreeMap<&TxnId, &Transaction> =
            outcome.accepted.iter().map(|t| (&t.id, t)).collect();
        let page_ids: BTreeSet<&TxnId> = kept.iter().map(|t| &t.id).collect();
        for txn in &outcome.accepted {
            if !page_ids.contains(&txn.id) {
                apply(&mut *peer, txn)?;
            }
        }
        for txn in &kept {
            if restored_own.contains(&txn.id) {
                apply(&mut *peer, txn)?;
            } else if let Some(translated) = accepted_by_id.get(&txn.id) {
                apply(&mut *peer, translated)?;
            }
        }
    }
    Ok(PageResult {
        candidates: n_candidates,
        applied,
        held_back,
        processed,
        outcome,
    })
}

/// The earlier of two cursors in archive position order: `Start` of an
/// epoch precedes its transactions, and `At(id)` (inclusive) precedes
/// `After(id)` (exclusive) at the same id — so the minimum is the cursor
/// whose scan covers everything the other's does.
fn min_cursor(a: FetchCursor, b: FetchCursor) -> FetchCursor {
    fn key(c: &FetchCursor) -> (Epoch, Option<(&TxnId, u8)>) {
        let bound = match c.bound() {
            CursorBound::Start => None,
            CursorBound::At(id) => Some((id, 0)),
            CursorBound::After(id) => Some((id, 1)),
        };
        (c.epoch(), bound)
    }
    if key(&b) < key(&a) {
        b
    } else {
        a
    }
}

/// Order transactions so that in-batch antecedents come before dependents;
/// ties broken by (epoch, id). Transactions whose antecedents are outside
/// the batch are unconstrained by them.
fn causal_order(txns: Vec<Transaction>) -> Vec<Transaction> {
    let ids: BTreeSet<TxnId> = txns.iter().map(|t| t.id.clone()).collect();
    let mut by_id: BTreeMap<TxnId, Transaction> =
        txns.into_iter().map(|t| (t.id.clone(), t)).collect();
    let mut in_deg: BTreeMap<TxnId, usize> = BTreeMap::new();
    let mut dependents: BTreeMap<TxnId, Vec<TxnId>> = BTreeMap::new();
    for (id, txn) in &by_id {
        let deg = txn.antecedents.iter().filter(|a| ids.contains(a)).count();
        in_deg.insert(id.clone(), deg);
        for a in &txn.antecedents {
            if ids.contains(a) {
                dependents.entry(a.clone()).or_default().push(id.clone());
            }
        }
    }
    // Kahn with a deterministic ready queue ordered by (epoch, id).
    let mut ready: VecDeque<TxnId> = {
        let mut v: Vec<TxnId> = in_deg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(id, _)| id.clone())
            .collect();
        v.sort_by_key(|id| (by_id[id].epoch, id.clone()));
        v.into()
    };
    let mut out = Vec::with_capacity(by_id.len());
    while let Some(id) = ready.pop_front() {
        if let Some(deps) = dependents.get(&id) {
            for d in deps.clone() {
                // analyze: allow(panic) -- dependents and in_deg are built over the same key set in the loop above
                let e = in_deg.get_mut(&d).expect("node");
                *e -= 1;
                if *e == 0 {
                    ready.push_back(d);
                }
            }
        }
        if let Some(txn) = by_id.remove(&id) {
            out.push(txn);
        }
    }
    // A causality cycle cannot arise from well-formed publication, but an
    // adversarial store could fabricate one; append leftovers in id order
    // rather than dropping them.
    out.extend(by_id.into_values());
    out
}

impl std::fmt::Debug for Cdss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cdss")
            .field("peers", &self.peers.keys().collect::<Vec<_>>())
            .field("mappings", &self.mappings.len())
            .field("epoch", &self.clock.current())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::{tuple, RelationSchema, ValueType};

    fn txn(peer: &str, seq: u64, epoch: u64, ants: &[(&str, u64)]) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new(peer), seq),
            Epoch::new(epoch),
            vec![],
        )
        .with_antecedents(ants.iter().map(|(p, s)| TxnId::new(PeerId::new(*p), *s)))
    }

    #[test]
    fn causal_order_puts_antecedents_first() {
        // D#1 at epoch 1 depends on nothing; C#1 at epoch 1 depends on
        // D#1 — id order alone would put C first.
        let txns = vec![txn("C", 1, 1, &[("D", 1)]), txn("D", 1, 1, &[])];
        let ordered = causal_order(txns);
        assert_eq!(ordered[0].id, TxnId::new(PeerId::new("D"), 1));
        assert_eq!(ordered[1].id, TxnId::new(PeerId::new("C"), 1));
    }

    #[test]
    fn causal_order_ties_break_by_epoch_then_id() {
        let txns = vec![
            txn("B", 1, 2, &[]),
            txn("A", 1, 3, &[]),
            txn("C", 1, 1, &[]),
        ];
        let ordered = causal_order(txns);
        let ids: Vec<String> = ordered.iter().map(|t| t.id.to_string()).collect();
        assert_eq!(ids, vec!["C#1", "B#1", "A#1"]);
    }

    #[test]
    fn causal_order_external_antecedents_do_not_block() {
        // Antecedent outside the batch: the transaction is unconstrained.
        let txns = vec![txn("A", 2, 2, &[("Ghost", 9)])];
        let ordered = causal_order(txns);
        assert_eq!(ordered.len(), 1);
    }

    #[test]
    fn causal_order_survives_fabricated_cycles() {
        // An adversarial archive could fabricate a cycle; nothing may be
        // dropped.
        let txns = vec![txn("A", 1, 1, &[("B", 1)]), txn("B", 1, 1, &[("A", 1)])];
        let ordered = causal_order(txns);
        assert_eq!(ordered.len(), 2);
    }

    #[test]
    fn eval_threads_plumb_through_builder_and_exchange() {
        let schema = DatabaseSchema::new("kv")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "R",
                    &[("k", ValueType::Int), ("v", ValueType::Int)],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap();
        let mut cdss = Cdss::builder()
            .peer(
                "A",
                schema.clone(),
                orchestra_reconcile::TrustPolicy::open(1),
            )
            .peer("B", schema, orchestra_reconcile::TrustPolicy::open(1))
            .identity("A", "B")
            .unwrap()
            .eval_threads(2)
            .build()
            .unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        assert_eq!(cdss.peer(&a).unwrap().engine_threads(), 2);
        {
            let inst = cdss.peer_mut(&a).unwrap().instance_mut();
            for k in 0..16i64 {
                inst.insert("R", tuple![k, k]).unwrap();
            }
        }
        cdss.publish(&a).unwrap().unwrap();
        // Per-exchange override: sticky on the peer's engine.
        let report = cdss
            .reconcile_with(
                &b,
                ExchangeOptions {
                    eval_threads: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(report.outcome.accepted.len(), 1);
        assert_eq!(cdss.peer(&b).unwrap().engine_threads(), 1);
        assert_eq!(cdss.peer(&a).unwrap().engine_threads(), 2, "A untouched");
        assert_eq!(
            cdss.peer(&b)
                .unwrap()
                .instance()
                .relation("R")
                .unwrap()
                .len(),
            16
        );
    }

    #[test]
    fn diff_publish_pairs_modifies_and_orders_epochs() {
        let schema = DatabaseSchema::new("kv")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "R",
                    &[("k", ValueType::Int), ("v", ValueType::Int)],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap();
        let mut cdss = Cdss::builder()
            .peer("A", schema, orchestra_reconcile::TrustPolicy::open(1))
            .build()
            .unwrap();
        let a = PeerId::new("A");
        // First epoch: insert two keys.
        {
            let inst = cdss.peer_mut(&a).unwrap().instance_mut();
            inst.insert("R", tuple![1, 10]).unwrap();
            inst.insert("R", tuple![2, 20]).unwrap();
        }
        let t1 = cdss.publish(&a).unwrap().unwrap();
        // Second epoch: modify one, delete the other, add a third.
        {
            let inst = cdss.peer_mut(&a).unwrap().instance_mut();
            inst.upsert("R", tuple![1, 11]).unwrap();
            inst.delete("R", &tuple![2, 20]).unwrap();
            inst.insert("R", tuple![3, 30]).unwrap();
        }
        let t2 = cdss.publish(&a).unwrap().unwrap();
        let stored = cdss.store().fetch(&t2).unwrap().unwrap();
        assert_eq!(stored.updates.len(), 3);
        let mut kinds: Vec<&str> = stored
            .updates
            .iter()
            .map(|u| match u {
                Update::Insert { .. } => "ins",
                Update::Delete { .. } => "del",
                Update::Modify { .. } => "mod",
            })
            .collect();
        kinds.sort();
        assert_eq!(kinds, vec!["del", "ins", "mod"]);
        assert!(stored.antecedents.contains(&t1));
        assert!(stored.epoch > cdss.store().fetch(&t1).unwrap().unwrap().epoch);
    }
}
