//! Per-peer state: local instance, policy, reconciler, and the peer's own
//! incremental view of the mapping program.

use crate::Result;
use orchestra_datalog::{Engine, NodeId, Query};
use orchestra_reconcile::{Decision, Reconciler, TrustPolicy};
use orchestra_relational::{DatabaseSchema, Instance, Tuple};
use orchestra_store::FetchCursor;
use orchestra_updates::{Epoch, PeerId, TxnId};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// One CDSS participant.
///
/// A peer owns four kinds of state, mirroring §2 of the paper:
///
/// * the **local instance** — fully autonomous and editable; queries run
///   here ([`Peer::query`]);
/// * the **published snapshot** — the last state made visible to others;
///   `publish` diffs the live instance against it;
/// * the **reconciler** — persistent decisions (accepted / rejected /
///   deferred) over other peers' transactions, plus open conflicts;
/// * the **translation engine** — the peer's materialized view of every
///   published transaction pushed through the mapping program, with
///   provenance. This is per-peer (not global) because peers are
///   intermittently connected and each may have seen a different prefix
///   of the published history.
#[derive(Debug)]
pub struct Peer {
    pub(crate) id: PeerId,
    pub(crate) schema: DatabaseSchema,
    pub(crate) instance: Instance,
    pub(crate) published_snapshot: Instance,
    pub(crate) policy: TrustPolicy,
    pub(crate) reconciler: Reconciler,
    pub(crate) engine: Engine,
    /// Base node → the transaction that published it (provenance →
    /// transaction lineage).
    pub(crate) node_txn: HashMap<NodeId, TxnId>,
    /// Qualified relation name (`"Peer.R"`) → local name (`"R"`), for this
    /// peer's own namespace only. Precomputed so translating an engine
    /// change into a local update is one hash lookup, not a per-change
    /// prefix strip and string allocation.
    pub(crate) local_names: HashMap<Arc<str>, Arc<str>>,
    /// Transactions already ingested into this peer's engine.
    pub(crate) ingested: BTreeSet<TxnId>,
    /// Next local transaction sequence number.
    pub(crate) next_seq: u64,
    /// Epoch up to which this peer has fully reconciled.
    pub(crate) last_epoch: Epoch,
    /// Where the next exchange resumes when the last one hit an
    /// unreachable payload: frozen **at** the gap, so the blocked
    /// transaction is retried before anything newer is consumed.
    pub(crate) resume: Option<FetchCursor>,
    /// While blocked: the gaps skipped so far plus the reachable
    /// transactions held back behind them (persisted so a cheap poll can
    /// skip re-scanning the suffix yet still hold new dependents back).
    pub(crate) held: BTreeSet<TxnId>,
    /// While blocked: the last archive position this peer has scanned.
    /// A poll that finds the gap still dead resumes scanning *new*
    /// history from here instead of re-cloning everything past the gap.
    pub(crate) scanned_hw: Option<(Epoch, TxnId)>,
}

impl Peer {
    pub(crate) fn new(
        id: PeerId,
        schema: DatabaseSchema,
        policy: TrustPolicy,
        engine: Engine,
    ) -> Peer {
        let instance = Instance::new(schema.clone());
        let local_names: HashMap<Arc<str>, Arc<str>> = schema
            .relations()
            .map(|r| {
                (
                    Arc::from(crate::mapping::qualify(&id, r.name()).as_str()),
                    r.name_arc(),
                )
            })
            .collect();
        Peer {
            reconciler: Reconciler::new(schema.clone()),
            published_snapshot: instance.clone(),
            instance,
            id,
            schema,
            policy,
            engine,
            local_names,
            node_txn: HashMap::new(),
            ingested: BTreeSet::new(),
            next_seq: 0,
            last_epoch: Epoch::zero(),
            resume: None,
            held: BTreeSet::new(),
            scanned_hw: None,
        }
    }

    /// The peer's id.
    pub fn id(&self) -> &PeerId {
        &self.id
    }

    /// The peer's local schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The live local instance (read-only view).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Mutable access to the local instance — local autonomy: users edit
    /// freely between update exchanges.
    pub fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// The last published snapshot.
    pub fn published_snapshot(&self) -> &Instance {
        &self.published_snapshot
    }

    /// The peer's trust policy.
    pub fn policy(&self) -> &TrustPolicy {
        &self.policy
    }

    /// Replace the trust policy (applies to future reconciliations).
    pub fn set_policy(&mut self, policy: TrustPolicy) {
        self.policy = policy;
    }

    /// The decision recorded for a transaction, if any.
    pub fn decision(&self, id: &TxnId) -> Option<Decision> {
        self.reconciler.decision(id)
    }

    /// Currently deferred transactions.
    pub fn deferred(&self) -> Vec<TxnId> {
        self.reconciler.deferred()
    }

    /// Open conflicts awaiting [`crate::Cdss::resolve`].
    pub fn open_conflicts(&self) -> &[(TxnId, TxnId)] {
        self.reconciler.open_conflicts()
    }

    /// Epoch up to which this peer has reconciled.
    pub fn last_reconciled_epoch(&self) -> Epoch {
        self.last_epoch
    }

    /// The archive position the next exchange resumes from, when the last
    /// one was blocked by an unreachable payload (`None` = caught up; see
    /// [`crate::ReconcileReport::blocked_on`]).
    pub fn resume_cursor(&self) -> Option<&FetchCursor> {
        self.resume.as_ref()
    }

    /// Run a conjunctive query over the local instance.
    pub fn query(&self, query: &Query) -> Result<Vec<Tuple>> {
        Ok(query.eval(&self.instance)?)
    }

    /// The provenance polynomial of a tuple in this peer's translated view
    /// (over the engine's interned node ids), if the tuple is known.
    pub fn provenance(
        &self,
        relation: &str,
        tuple: &Tuple,
    ) -> Option<orchestra_provenance::Polynomial<NodeId>> {
        let qualified = crate::mapping::qualify(&self.id, relation);
        self.engine.provenance(&qualified, tuple)
    }

    /// Map a base provenance node to the transaction that published it.
    pub fn node_transaction(&self, node: NodeId) -> Option<&TxnId> {
        self.node_txn.get(&node)
    }

    /// The peer's translation-engine statistics.
    pub fn engine_stats(&self) -> orchestra_datalog::EngineStats {
        self.engine.stats()
    }

    /// The peer's translation-engine evaluation thread count.
    pub fn engine_threads(&self) -> usize {
        self.engine.threads()
    }
}
