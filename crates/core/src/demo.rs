//! The paper's Figure 2 CDSS: four bioinformatics peers.
//!
//! "Four participants (the Universities of Alaska, Beijing, Crete, and
//! Dresden) share information about reference sequences for various
//! proteins in several organisms. Alaska and Beijing assign a unique ID to
//! each organism and protein and use those to give the reference
//! sequences, giving a schema Σ1 = {O(org, oid), P(prot, pid),
//! S(oid, pid, seq)}, while Crete and Dresden do not assign IDs, giving a
//! second schema Σ2 = {OPS(org, prot, seq)}. Mappings MA↔B and MC↔D are
//! identity mappings. MA→C joins the three tables of Σ1 into the single
//! table of Σ2, while MC→A does the inverse and splits the single table of
//! Σ2 into the three tables of Σ1. Alaska, Beijing and Dresden each trust
//! all other participants equally, but Crete trusts only Beijing and
//! Dresden (but prefers Beijing to Dresden in the event of a conflict)."

use crate::cdss::Cdss;
use crate::Result;
use orchestra_datalog::{Atom, Term, Tgd};
use orchestra_reconcile::{TrustCondition, TrustPolicy};
use orchestra_relational::{DatabaseSchema, RelationSchema, ValueType};
use orchestra_updates::PeerId;

/// Σ1 = {O(org, oid), P(prot, pid), S(oid, pid, seq)} — organisms and
/// proteins carry unique IDs; `S` keys sequences by (oid, pid).
pub fn sigma1() -> Result<DatabaseSchema> {
    Ok(DatabaseSchema::new("Σ1")
        .with_relation(RelationSchema::from_parts_keyed(
            "O",
            &[("org", ValueType::Str), ("oid", ValueType::Int)],
            &["oid"],
        )?)?
        .with_relation(RelationSchema::from_parts_keyed(
            "P",
            &[("prot", ValueType::Str), ("pid", ValueType::Int)],
            &["pid"],
        )?)?
        .with_relation(RelationSchema::from_parts_keyed(
            "S",
            &[
                ("oid", ValueType::Int),
                ("pid", ValueType::Int),
                ("seq", ValueType::Str),
            ],
            &["oid", "pid"],
        )?)?)
}

/// Σ2 = {OPS(org, prot, seq)} — no IDs; keyed by (org, prot).
pub fn sigma2() -> Result<DatabaseSchema> {
    Ok(
        DatabaseSchema::new("Σ2").with_relation(RelationSchema::from_parts_keyed(
            "OPS",
            &[
                ("org", ValueType::Str),
                ("prot", ValueType::Str),
                ("seq", ValueType::Str),
            ],
            &["org", "prot"],
        )?)?,
    )
}

/// `MA→C`: join Σ1's three tables into Σ2's `OPS`.
pub fn ma_to_c() -> Result<Tgd> {
    Ok(Tgd::new(
        "MA->C",
        vec![
            Atom::vars("Alaska.O", &["org", "oid"]),
            Atom::vars("Alaska.P", &["prot", "pid"]),
            Atom::vars("Alaska.S", &["oid", "pid", "seq"]),
        ],
        vec![Atom::vars("Crete.OPS", &["org", "prot", "seq"])],
    )?)
}

/// `MC→A`: split `OPS` back into Σ1, inventing IDs. Explicit Skolem terms
/// make the invented organism id a function of `org` alone (and the
/// protein id of `prot` alone), so repeated sequences for one organism
/// share one labeled null — the natural reading of the paper's GUI.
pub fn mc_to_a() -> Result<Tgd> {
    let oid = || Term::skolem("oid", vec![Term::var("org")]);
    let pid = || Term::skolem("pid", vec![Term::var("prot")]);
    Ok(Tgd::new(
        "MC->A",
        vec![Atom::vars("Crete.OPS", &["org", "prot", "seq"])],
        vec![
            Atom::new("Alaska.O", vec![Term::var("org"), oid()]),
            Atom::new("Alaska.P", vec![Term::var("prot"), pid()]),
            Atom::new("Alaska.S", vec![oid(), pid(), Term::var("seq")]),
        ],
    )?)
}

/// Crete's trust policy: only Beijing (priority 2) and Dresden (priority
/// 1) are trusted; everything else is distrusted.
pub fn crete_policy() -> TrustPolicy {
    TrustPolicy::closed()
        .with(TrustCondition::peer(PeerId::new("Beijing"), 2))
        .with(TrustCondition::peer(PeerId::new("Dresden"), 1))
}

/// Build the complete Figure 2 CDSS with the default in-memory store.
pub fn figure2() -> Result<Cdss> {
    figure2_with_store(Box::new(orchestra_store::InMemoryStore::new()))
}

/// Build the Figure 2 CDSS over a caller-provided store (e.g. the
/// simulated DHT for experiment E8).
pub fn figure2_with_store(store: Box<dyn orchestra_store::UpdateStore>) -> Result<Cdss> {
    let s1 = sigma1()?;
    let s2 = sigma2()?;
    Cdss::builder()
        .peer("Alaska", s1.clone(), TrustPolicy::open(1))
        .peer("Beijing", s1, TrustPolicy::open(1))
        .peer("Crete", s2.clone(), crete_policy())
        .peer("Dresden", s2, TrustPolicy::open(1))
        .identity("Alaska", "Beijing")?
        .identity("Crete", "Dresden")?
        .mapping(ma_to_c()?)
        .mapping(mc_to_a()?)
        .build_with_store(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::Update;

    #[test]
    fn schemas_match_paper() {
        let s1 = sigma1().unwrap();
        assert_eq!(s1.len(), 3);
        assert!(s1.contains("O"));
        assert!(s1.contains("P"));
        assert!(s1.contains("S"));
        let s2 = sigma2().unwrap();
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.relation("OPS").unwrap().key(), &[0, 1]);
    }

    #[test]
    fn network_builds() {
        let cdss = figure2().unwrap();
        assert_eq!(cdss.peer_ids().len(), 4);
        // 6 identity tgds (3 relations × 2 directions) + 2 for OPS + join + split.
        assert_eq!(cdss.mappings().len(), 10);
    }

    #[test]
    fn alaska_to_dresden_end_to_end() {
        // Scenario 1: "Updates made by Alaska get translated into
        // Dresden's schema and applied."
        let mut cdss = figure2().unwrap();
        let alaska = PeerId::new("Alaska");
        let dresden = PeerId::new("Dresden");
        cdss.publish_transaction(
            &alaska,
            vec![
                Update::insert("O", tuple!["HIV", 1]),
                Update::insert("P", tuple!["gp120", 2]),
                Update::insert("S", tuple![1, 2, "MRVKEKYQ"]),
            ],
        )
        .unwrap();
        let report = cdss.reconcile(&dresden).unwrap();
        assert_eq!(report.candidates, 1);
        assert_eq!(report.outcome.accepted.len(), 1);
        let ops = cdss
            .peer(&dresden)
            .unwrap()
            .instance()
            .relation("OPS")
            .unwrap();
        assert!(ops.contains(&tuple!["HIV", "gp120", "MRVKEKYQ"]));
    }

    #[test]
    fn dresden_to_alaska_invents_ids() {
        // Scenario 1 (reverse direction): Dresden's OPS rows split into
        // Σ1 with labeled-null ids at Alaska.
        let mut cdss = figure2().unwrap();
        let alaska = PeerId::new("Alaska");
        let dresden = PeerId::new("Dresden");
        cdss.publish_transaction(
            &dresden,
            vec![Update::insert("OPS", tuple!["Rat", "p53", "MEEPQSDPSV"])],
        )
        .unwrap();
        let report = cdss.reconcile(&alaska).unwrap();
        assert_eq!(report.outcome.accepted.len(), 1);
        let peer = cdss.peer(&alaska).unwrap();
        let o = peer.instance().relation("O").unwrap();
        assert_eq!(o.len(), 1);
        let o_row = o.iter().next().unwrap();
        assert_eq!(o_row[0], orchestra_relational::Value::str("Rat"));
        assert!(o_row[1].is_labeled_null(), "invented organism id");
        let s = peer.instance().relation("S").unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.iter().next().unwrap()[0].is_labeled_null());
    }
}
