//! Mapping helpers: peer-qualified relation names and identity mappings.
//!
//! Each peer's local schema uses plain relation names (`O`, `OPS`); the
//! system-wide mapping program evaluates over a combined namespace where
//! every relation is qualified as `"<Peer>.<Relation>"`. Mappings are
//! authored directly over qualified names (see [`crate::demo::figure2`]
//! for the paper's program).

use crate::Result;
use orchestra_datalog::Tgd;
use orchestra_relational::{ColumnDef, DatabaseSchema, RelationSchema};
use orchestra_updates::PeerId;

/// The qualified name of a peer's relation in the combined namespace.
pub fn qualify(peer: &PeerId, relation: &str) -> String {
    format!("{}.{relation}", peer.name())
}

/// Build the peer's portion of the combined schema: every relation
/// re-declared under its qualified name (keys preserved — conflict
/// detection and update pairing use them).
pub fn qualified_schema(peer: &PeerId, local: &DatabaseSchema) -> Result<Vec<RelationSchema>> {
    let mut out = Vec::with_capacity(local.len());
    for rel in local.relations() {
        let cols: Vec<ColumnDef> = rel.columns().to_vec();
        let qualified =
            RelationSchema::with_key(qualify(peer, rel.name()), cols, rel.key().to_vec())?;
        out.push(qualified);
    }
    Ok(out)
}

/// Identity mappings in **both** directions between two peers sharing a
/// schema — the paper's `MA↔B` and `MC↔D`. One tgd per relation per
/// direction, named `"M<A>-><B>/<Rel>"`.
pub fn identity_mappings(a: &PeerId, b: &PeerId, shared: &DatabaseSchema) -> Result<Vec<Tgd>> {
    let mut out = Vec::with_capacity(shared.len() * 2);
    for rel in shared.relations() {
        let arity = rel.arity();
        out.push(Tgd::identity(
            format!("M{}->{}/{}", a.name(), b.name(), rel.name()),
            qualify(a, rel.name()),
            qualify(b, rel.name()),
            arity,
        )?);
        out.push(Tgd::identity(
            format!("M{}->{}/{}", b.name(), a.name(), rel.name()),
            qualify(b, rel.name()),
            qualify(a, rel.name()),
            arity,
        )?);
    }
    Ok(out)
}

/// Split a qualified name back into `(peer, relation)`.
pub fn unqualify(qualified: &str) -> Option<(&str, &str)> {
    qualified.split_once('.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::ValueType;

    fn sigma1() -> DatabaseSchema {
        DatabaseSchema::new("Σ1")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "O",
                    &[("org", ValueType::Str), ("oid", ValueType::Int)],
                    &["oid"],
                )
                .unwrap(),
            )
            .unwrap()
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "P",
                    &[("prot", ValueType::Str), ("pid", ValueType::Int)],
                    &["pid"],
                )
                .unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn qualify_and_unqualify() {
        let p = PeerId::new("Alaska");
        assert_eq!(qualify(&p, "O"), "Alaska.O");
        assert_eq!(unqualify("Alaska.O"), Some(("Alaska", "O")));
        assert_eq!(unqualify("nope"), None);
    }

    #[test]
    fn qualified_schema_preserves_keys() {
        let p = PeerId::new("Alaska");
        let rels = qualified_schema(&p, &sigma1()).unwrap();
        assert_eq!(rels.len(), 2);
        let o = rels.iter().find(|r| r.name() == "Alaska.O").unwrap();
        assert_eq!(o.key(), &[1], "oid key preserved");
        assert_eq!(o.arity(), 2);
    }

    #[test]
    fn identity_mappings_both_directions() {
        let a = PeerId::new("Alaska");
        let b = PeerId::new("Beijing");
        let ms = identity_mappings(&a, &b, &sigma1()).unwrap();
        assert_eq!(ms.len(), 4); // 2 relations × 2 directions
        let names: Vec<String> = ms.iter().map(|m| m.name.to_string()).collect();
        assert!(names.contains(&"MAlaska->Beijing/O".to_string()));
        assert!(names.contains(&"MBeijing->Alaska/P".to_string()));
        // Each identity mapping compiles to a single rule copying terms.
        for m in &ms {
            let rules = m.compile().unwrap();
            assert_eq!(rules.len(), 1);
            assert_eq!(rules[0].head.terms, rules[0].body[0].terms);
        }
    }
}
