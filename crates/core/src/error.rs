//! The CDSS error domain: wraps every layer's errors.

use std::fmt;

/// Errors raised by CDSS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A peer name was not found.
    UnknownPeer(String),
    /// A peer with this name already exists.
    DuplicatePeer(String),
    /// Relational layer failure.
    Relational(String),
    /// Mapping/engine failure.
    Datalog(String),
    /// Update/transaction failure.
    Updates(String),
    /// Update store failure.
    Store(String),
    /// Reconciliation failure.
    Reconcile(String),
    /// Invalid CDSS configuration.
    Config(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownPeer(p) => write!(f, "unknown peer `{p}`"),
            CoreError::DuplicatePeer(p) => write!(f, "duplicate peer `{p}`"),
            CoreError::Relational(m) => write!(f, "relational: {m}"),
            CoreError::Datalog(m) => write!(f, "mapping engine: {m}"),
            CoreError::Updates(m) => write!(f, "updates: {m}"),
            CoreError::Store(m) => write!(f, "store: {m}"),
            CoreError::Reconcile(m) => write!(f, "reconcile: {m}"),
            CoreError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<orchestra_relational::RelationalError> for CoreError {
    fn from(e: orchestra_relational::RelationalError) -> Self {
        CoreError::Relational(e.to_string())
    }
}

impl From<orchestra_datalog::DatalogError> for CoreError {
    fn from(e: orchestra_datalog::DatalogError) -> Self {
        CoreError::Datalog(e.to_string())
    }
}

impl From<orchestra_updates::UpdateError> for CoreError {
    fn from(e: orchestra_updates::UpdateError) -> Self {
        CoreError::Updates(e.to_string())
    }
}

impl From<orchestra_store::StoreError> for CoreError {
    fn from(e: orchestra_store::StoreError) -> Self {
        CoreError::Store(e.to_string())
    }
}

impl From<orchestra_reconcile::ReconcileError> for CoreError {
    fn from(e: orchestra_reconcile::ReconcileError) -> Self {
        CoreError::Reconcile(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::UnknownPeer("X".into())
            .to_string()
            .contains("unknown peer"));
        let e: CoreError =
            orchestra_relational::RelationalError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CoreError::Relational(_)));
        let e: CoreError = orchestra_datalog::DatalogError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CoreError::Datalog(_)));
        let e: CoreError = orchestra_updates::UpdateError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CoreError::Updates(_)));
        let e: CoreError = orchestra_store::StoreError::DuplicateTxn("t".into()).into();
        assert!(matches!(e, CoreError::Store(_)));
        let e: CoreError = orchestra_reconcile::ReconcileError::NotDeferred("t".into()).into();
        assert!(matches!(e, CoreError::Reconcile(_)));
    }
}
