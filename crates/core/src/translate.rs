//! Update translation: pushing published transactions through the mapping
//! program and packaging the per-transaction change sets as candidates.
//!
//! "Since the CDSS model relies on propagation of updates rather than data
//! through the system, there must be a method to translate updates over
//! one schema to updates over a different schema. … The rules must also
//! maintain enough provenance or lineage information that (1)
//! reconciliation can choose between transactions based on user
//! preferences, and (2) efficient incremental recomputation of the target
//! data instance and provenance is possible." (§3)
//!
//! Implementation: each transaction's tuple-level updates are applied as
//! base-fact operations on the origin peer's qualified relations in the
//! reconciling peer's incremental engine; the engine's change log —
//! restricted to the reconciling peer's namespace — *is* the translated
//! transaction. Deletions propagate with the provenance-based algorithm
//! (the whole point of storing provenance); per-update origins come from
//! the provenance graph's lineage.

use crate::mapping::qualify;
use crate::peer::Peer;
use crate::Result;
use orchestra_datalog::{ChangeKind, DeletionAlgorithm, NodeId};
use orchestra_reconcile::{Candidate, CandidateUpdate};
use orchestra_relational::Tuple;
use orchestra_updates::{PeerId, Transaction, Update};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

impl Peer {
    /// Ingest one published transaction into this peer's translation
    /// engine and return the candidate it translates to — `None` when the
    /// transaction was published by this peer itself (its effects are
    /// already local).
    pub(crate) fn ingest_and_translate(&mut self, txn: &Transaction) -> Result<Option<Candidate>> {
        self.ingested.insert(txn.id.clone());
        // Apply the transaction's updates as base-fact operations in the
        // origin peer's namespace.
        for u in &txn.updates {
            let qrel = qualify(&txn.id.peer, u.relation());
            match u {
                Update::Insert { tuple, .. } => {
                    let node = self.engine.insert_base(&qrel, tuple.clone())?;
                    self.node_txn.insert(node, txn.id.clone());
                }
                Update::Delete { tuple, .. } => {
                    self.engine
                        .remove_base(&qrel, tuple, DeletionAlgorithm::ProvenanceBased)?;
                }
                Update::Modify { old, new, .. } => {
                    self.engine
                        .remove_base(&qrel, old, DeletionAlgorithm::ProvenanceBased)?;
                    let node = self.engine.insert_base(&qrel, new.clone())?;
                    self.node_txn.insert(node, txn.id.clone());
                }
            }
        }
        self.engine.propagate()?;
        let changes = self.engine.drain_changes();

        if txn.id.peer == self.id {
            return Ok(None);
        }

        // Restrict to this peer's namespace and strip the qualifier (one
        // precomputed hash lookup per change; see `Peer::local_names`).
        let mut added: Vec<(Arc<str>, Tuple, NodeId)> = Vec::new();
        let mut removed: Vec<(Arc<str>, Tuple, NodeId)> = Vec::new();
        for ch in changes {
            let Some(local) = self.local_names.get(&ch.relation) else {
                continue;
            };
            let local = Arc::clone(local);
            match ch.kind {
                ChangeKind::Added => added.push((local, ch.tuple, ch.node)),
                ChangeKind::Removed => removed.push((local, ch.tuple, ch.node)),
            }
        }

        // Pair removals and additions on the same key into modifies.
        let updates = self.pair_changes(added, removed)?;
        Ok(Some(Candidate::from_updates(
            txn.id.clone(),
            txn.epoch,
            updates,
            txn.antecedents.clone(),
        )))
    }

    /// Convert raw change lists into candidate updates, pairing a removal
    /// and an addition with the same (relation, key) into one `Modify`.
    fn pair_changes(
        &self,
        added: Vec<(Arc<str>, Tuple, NodeId)>,
        removed: Vec<(Arc<str>, Tuple, NodeId)>,
    ) -> Result<Vec<CandidateUpdate>> {
        let mut removed_by_key: BTreeMap<(Arc<str>, Tuple), (Tuple, NodeId)> = BTreeMap::new();
        for (rel, tuple, node) in removed {
            let schema = self.schema.relation(&rel)?;
            let key = schema.key_of(&tuple);
            removed_by_key.insert((rel, key), (tuple, node));
        }
        let mut out: Vec<CandidateUpdate> = Vec::new();
        for (rel, tuple, node) in added {
            let schema = self.schema.relation(&rel)?;
            let key = schema.key_of(&tuple);
            let origins = self.origins_of(node);
            match removed_by_key.remove(&(Arc::clone(&rel), key)) {
                Some((old, old_node)) => {
                    let mut all = origins;
                    all.extend(self.origins_of(old_node));
                    out.push(CandidateUpdate::new(Update::modify(rel, old, tuple), all));
                }
                None => {
                    out.push(CandidateUpdate::new(Update::insert(rel, tuple), origins));
                }
            }
        }
        for ((rel, _), (tuple, node)) in removed_by_key {
            let origins = self.origins_of(node);
            out.push(CandidateUpdate::new(Update::delete(rel, tuple), origins));
        }
        Ok(out)
    }

    /// The origin peers of a node: the publishers of the base facts in its
    /// **canonical proof** (the chronologically first derivation chain).
    ///
    /// Raw graph reachability would over-approximate: recursive mapping
    /// programs (identity cycles, join ∘ split round trips) make unrelated
    /// tuples graph-reachable through non-well-founded pseudo-derivations,
    /// wrongly attributing origins — and, worse, creating antecedent edges
    /// onto causally unrelated (even conflicting) transactions. The full
    /// simple-proof polynomial is exact but exponential in pathological
    /// graphs; the canonical proof is linear-time and names exactly the
    /// data that actually produced the tuple. Callers who need *all*
    /// alternative origins can evaluate [`Peer::provenance`] directly.
    pub(crate) fn origins_of(&self, node: NodeId) -> BTreeSet<PeerId> {
        let mut out = BTreeSet::new();
        for base in self.engine.graph().first_proof_lineage(node) {
            if let Some(txn_id) = self.node_txn.get(&base) {
                out.insert(txn_id.peer.clone());
            }
        }
        out
    }

    /// Antecedents of a locally published update list, derived from the
    /// provenance of the tuple versions being read: the transactions whose
    /// base facts appear in their canonical proofs (see
    /// [`origins_of`](Peer::origins_of) for why not reachability).
    pub(crate) fn derive_antecedents(
        &self,
        updates: &[Update],
    ) -> Result<BTreeSet<orchestra_updates::TxnId>> {
        let mut out = BTreeSet::new();
        for u in updates {
            let Some(read) = u.read_version() else {
                continue;
            };
            let qualified = qualify(&self.id, u.relation());
            let Some(node) = self.engine.node_id(&qualified, read) else {
                continue;
            };
            for base in self.engine.graph().first_proof_lineage(node) {
                if let Some(txn_id) = self.node_txn.get(&base) {
                    out.insert(txn_id.clone());
                }
            }
        }
        Ok(out)
    }
}
