//! CI smoke: run the experiment harness on a reduced workload and
//! validate the shape of the emitted `BENCH_*.json` files, including the
//! pagination/availability counters added with the paged exchange, the
//! E10 loopback-network counters (round trips, wire-visible gaps,
//! transport failures mapped to `Unavailable`), the E11 thread-scaling
//! report (per-thread-count rows, shard count, and the stats-parity
//! fields the shard-parallel engine must pin), and the E12 mesh-cluster
//! report (OS-process count, simulated peers, churn evidence,
//! convergence flags, per-node server counters, and the
//! interest-vs-full shipped-bytes comparison), and the E13
//! fault-injection report (faults injected at every layer, quarantined
//! == healed, zero duplicate applies, full convergence).

use orchestra_bench::json::{validate_report_shape, Json};
use std::process::Command;

#[test]
fn smoke_run_emits_valid_bench_json() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("orchestra-bench-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(exe)
        // This test pins the default 1/2/4/8 E11 sweep; don't let an
        // ambient thread-count override change the row set.
        .env_remove("ORCHESTRA_EVAL_THREADS")
        .args([
            "e1",
            "e4",
            "e7",
            "e8",
            "e10",
            "e11",
            "e12",
            "e13",
            "--smoke",
            "--variant",
            "ci-smoke",
            "--json-dir",
        ])
        .arg(&dir)
        .output()
        .expect("run experiments harness");
    assert!(
        out.status.success(),
        "harness failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    for exp in ["e1", "e4", "e7", "e8", "e10", "e11", "e12", "e13"] {
        let path = dir.join(format!("BENCH_{exp}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{exp}: unparseable JSON: {e}"));
        let errors = validate_report_shape(&doc);
        assert!(errors.is_empty(), "{exp}: bad shape: {errors:?}\n{text}");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some(exp));
        assert_eq!(doc.get("variant").unwrap().as_str(), Some("ci-smoke"));
        assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
        let summary = doc.get("summary").unwrap();
        // Throughput must be a positive finite number on any real machine.
        let tps = summary.get("tuples_per_sec").unwrap().as_f64().unwrap();
        assert!(
            tps.is_finite() && tps > 0.0,
            "{exp}: tuples_per_sec = {tps}"
        );
        // Every report carries the pagination/availability counters.
        let pages = summary
            .get("store_pages")
            .unwrap_or_else(|| panic!("{exp}: summary missing `store_pages`"))
            .as_f64()
            .unwrap();
        let unavailable = summary
            .get("store_unavailable")
            .unwrap_or_else(|| panic!("{exp}: summary missing `store_unavailable`"))
            .as_f64()
            .unwrap();
        match exp {
            // E1 exchanges through the archive: pages must be counted,
            // and the always-available memory store loses nothing.
            "e1" => {
                assert!(pages > 0.0, "{exp}: no pages recorded");
                assert_eq!(unavailable, 0.0, "{exp}: memory store has no gaps");
            }
            // E8's churn rows must show partial progress: pages scanned,
            // and (with R=1 under churn) some payloads unreachable.
            "e8" => {
                assert!(pages > 0.0, "{exp}: no pages recorded");
                assert!(unavailable > 0.0, "{exp}: churn produced no gaps");
                for row in doc.get("rows").unwrap().as_arr().unwrap() {
                    let reachable = row.get("reachable").unwrap().as_f64().unwrap();
                    let lost = row.get("unavailable").unwrap().as_f64().unwrap();
                    let row_pages = row.get("pages").unwrap().as_f64().unwrap();
                    assert!(row_pages > 0.0, "{exp}: row without pages");
                    assert!(reachable + lost > 0.0, "{exp}: empty scan row");
                }
            }
            // E10 pages the archive over TCP loopback: round trips
            // happened, churn rows carry wire-visible gaps, and a dead
            // endpoint mapped its transport failures to `Unavailable`.
            "e10" => {
                assert!(pages > 0.0, "{exp}: no pages recorded");
                assert!(unavailable > 0.0, "{exp}: churn produced no gaps");
                let rt = summary.get("round_trips").unwrap().as_f64().unwrap();
                assert!(rt > 0.0, "{exp}: no round trips counted");
                let mapped = summary
                    .get("unavailable_mapped")
                    .unwrap_or_else(|| panic!("{exp}: summary missing `unavailable_mapped`"))
                    .as_f64()
                    .unwrap();
                assert!(mapped > 0.0, "{exp}: dead endpoint not exercised");
                for row in doc.get("rows").unwrap().as_arr().unwrap() {
                    let row_pages = row.get("pages").unwrap().as_f64().unwrap();
                    assert!(row_pages > 0.0, "{exp}: row without pages");
                }
                // The overhead A/B block: a default build reports the
                // registry enabled and the loopback traffic visible in it.
                let obs = summary
                    .get("obs")
                    .unwrap_or_else(|| panic!("{exp}: summary missing `obs`"));
                assert_eq!(
                    obs.get("enabled"),
                    Some(&Json::Bool(true)),
                    "{exp}: default build must report obs enabled"
                );
                assert!(
                    obs.get("counters").unwrap().as_f64().unwrap() > 0.0,
                    "{exp}: empty obs registry after a loopback run"
                );
                assert!(
                    obs.get("net_events").unwrap().as_f64().unwrap() > 0.0,
                    "{exp}: loopback run recorded no net client events"
                );
            }
            // E11 drives the engine directly at several thread counts:
            // every row must carry its thread/shard configuration and
            // pin stats parity with the single-thread run; the summary
            // must report the speedup and host-parallelism fields.
            "e11" => {
                assert_eq!(pages, 0.0, "{exp}: unexpected store traffic");
                assert_eq!(unavailable, 0.0, "{exp}: unexpected store gaps");
                assert_eq!(
                    summary.get("stats_parity"),
                    Some(&Json::Bool(true)),
                    "{exp}: thread counts disagreed on engine stats"
                );
                let shards = summary.get("shards").unwrap().as_f64().unwrap();
                assert!(shards >= 4.0, "{exp}: needs ≥ 4 shards, got {shards}");
                let host = summary.get("host_parallelism").unwrap().as_f64().unwrap();
                assert!(host >= 1.0, "{exp}: bad host_parallelism {host}");
                for key in ["speedup_2t", "speedup_4t", "speedup_8t"] {
                    let s = summary
                        .get(key)
                        .unwrap_or_else(|| panic!("{exp}: summary missing `{key}`"))
                        .as_f64()
                        .unwrap();
                    assert!(s > 0.0, "{exp}: {key} = {s}");
                }
                let rows = doc.get("rows").unwrap().as_arr().unwrap();
                assert!(rows.len() >= 8, "{exp}: expected ≥ 2 workloads × 4 rows");
                for row in rows {
                    let threads = row.get("threads").unwrap().as_f64().unwrap();
                    assert!(threads >= 1.0, "{exp}: row without threads");
                    assert!(
                        row.get("shards").unwrap().as_f64().unwrap() >= 4.0,
                        "{exp}: row without shards"
                    );
                    assert_eq!(
                        row.get("stats_match_1t"),
                        Some(&Json::Bool(true)),
                        "{exp}: stats parity broken at {threads} threads"
                    );
                    assert!(
                        row.get("tuples_per_sec").unwrap().as_f64().unwrap() > 0.0,
                        "{exp}: zero-throughput row"
                    );
                    // Per-phase split from the obs round histograms:
                    // finite, non-negative, and merge_frac a fraction.
                    for key in ["plan_ms", "join_ms", "merge_ms"] {
                        let v = row
                            .get(key)
                            .unwrap_or_else(|| panic!("{exp}: row missing `{key}`"))
                            .as_f64()
                            .unwrap();
                        assert!(v.is_finite() && v >= 0.0, "{exp}: {key} = {v}");
                    }
                    let frac = row.get("merge_frac").unwrap().as_f64().unwrap();
                    assert!((0.0..=1.0).contains(&frac), "{exp}: merge_frac = {frac}");
                    // A default (obs-enabled) build must attribute real
                    // time: the split can't be all zeros.
                    assert!(
                        row.get("merge_ms").unwrap().as_f64().unwrap()
                            + row.get("join_ms").unwrap().as_f64().unwrap()
                            + row.get("plan_ms").unwrap().as_f64().unwrap()
                            > 0.0,
                        "{exp}: empty phase split"
                    );
                }
            }
            // E12 gossips across real OS processes: the run must span
            // ≥ 4 processes and ≥ 8 simulated peers, observe the churn
            // (dead-neighbor failures while a process was down), compact
            // every archival store, converge in every phase, and show
            // interest-based nodes shipping strictly fewer bytes than
            // full-replication nodes. Every row carries the served-side
            // per-message-type counters (the v2 PROBE surface).
            "e12" => {
                assert!(pages > 0.0, "{exp}: no pull pages recorded");
                assert_eq!(unavailable, 0.0, "{exp}: unexpected store gaps");
                let s = |key: &str| {
                    summary
                        .get(key)
                        .unwrap_or_else(|| panic!("{exp}: summary missing `{key}`"))
                        .as_f64()
                        .unwrap()
                };
                assert!(s("processes") >= 4.0, "{exp}: needs ≥ 4 OS processes");
                assert!(s("sim_peers") >= 8.0, "{exp}: needs ≥ 8 simulated peers");
                assert_eq!(
                    summary.get("converged"),
                    Some(&Json::Bool(true)),
                    "{exp}: cluster failed to converge"
                );
                assert!(s("churn_failures") > 0.0, "{exp}: churn left no trace");
                assert!(
                    s("compactions") >= 4.0,
                    "{exp}: archival stores not compacted"
                );
                assert!(
                    s("bytes_recv_interest_avg") < s("bytes_recv_full_avg"),
                    "{exp}: interest-based nodes must ship less than full replication"
                );
                let rows = doc.get("rows").unwrap().as_arr().unwrap();
                assert!(rows.len() >= 8, "{exp}: expected a row per mesh node");
                let mut modes = std::collections::BTreeSet::new();
                for row in rows {
                    modes.insert(row.get("mode").unwrap().as_str().unwrap().to_string());
                    assert!(
                        row.get("archive_len").unwrap().as_f64().unwrap() > 0.0,
                        "{exp}: empty archive after convergence"
                    );
                    for key in ["served_digests", "served_pulls", "served_subscriptions"] {
                        assert!(
                            row.get(key)
                                .unwrap_or_else(|| panic!("{exp}: row missing `{key}`"))
                                .as_f64()
                                .is_some(),
                            "{exp}: non-numeric `{key}`"
                        );
                    }
                }
                assert_eq!(
                    modes.into_iter().collect::<Vec<_>>(),
                    ["full", "interest"],
                    "{exp}: both replication modes must be present"
                );
                // The parent polls one METRICS snapshot per child
                // process mid-shutdown: every process must answer, and
                // the cluster-wide gossip counters must be visible.
                let obs = summary
                    .get("obs")
                    .unwrap_or_else(|| panic!("{exp}: summary missing `obs`"));
                assert_eq!(
                    obs.get("enabled"),
                    Some(&Json::Bool(true)),
                    "{exp}: default build must report obs enabled"
                );
                assert!(
                    obs.get("cluster_nodes_polled").unwrap().as_f64().unwrap() >= 4.0,
                    "{exp}: METRICS poll reached fewer than 4 processes"
                );
                assert!(
                    obs.get("cluster_pages_pulled").unwrap().as_f64().unwrap() > 0.0,
                    "{exp}: no gossip pulls visible over METRICS"
                );
            }
            // E13 injects deterministic faults at every layer and
            // must come out whole: faults actually fired, every
            // quarantined position healed from the mesh, the breaker
            // tripped against the dead node, no transaction applied
            // twice, and the cluster fully converged.
            "e13" => {
                assert!(pages > 0.0, "{exp}: no pull pages recorded");
                let s = |key: &str| {
                    summary
                        .get(key)
                        .unwrap_or_else(|| panic!("{exp}: summary missing `{key}`"))
                        .as_f64()
                        .unwrap()
                };
                assert!(s("faults_injected") > 0.0, "{exp}: no faults injected");
                assert!(s("quarantined") > 0.0, "{exp}: bit rot left no quarantine");
                assert_eq!(
                    s("healed"),
                    s("quarantined"),
                    "{exp}: not every quarantined position healed"
                );
                assert_eq!(s("duplicate_applies"), 0.0, "{exp}: duplicate applies");
                assert!(s("breaker_opened") > 0.0, "{exp}: breaker never opened");
                assert_eq!(
                    summary.get("converged"),
                    Some(&Json::Bool(true)),
                    "{exp}: cluster failed to converge"
                );
                for row in doc.get("rows").unwrap().as_arr().unwrap() {
                    for key in [
                        "len",
                        "healed",
                        "backoff_waits",
                        "breaker_opened",
                        "served_corrupt_frames",
                        "served_timed_out_conns",
                        "duplicate_applies",
                    ] {
                        assert!(
                            row.get(key)
                                .unwrap_or_else(|| panic!("{exp}: row missing `{key}`"))
                                .as_f64()
                                .is_some(),
                            "{exp}: non-numeric `{key}`"
                        );
                    }
                }
            }
            // E4/E7 drive engine/reconciler directly: present but zero.
            _ => {
                assert_eq!(pages, 0.0, "{exp}: unexpected store traffic");
                assert_eq!(unavailable, 0.0, "{exp}: unexpected store gaps");
            }
        }
        // The engine-backed experiments must report engine work.
        if exp == "e1" || exp == "e4" {
            let firings = summary.get("firings").unwrap().as_f64().unwrap();
            assert!(firings > 0.0, "{exp}: no rule firings recorded");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
