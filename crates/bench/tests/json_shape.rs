//! CI smoke: run the experiment harness on a reduced workload and
//! validate the shape of the emitted `BENCH_*.json` files.

use orchestra_bench::json::{validate_report_shape, Json};
use std::process::Command;

#[test]
fn smoke_run_emits_valid_bench_json() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("orchestra-bench-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(exe)
        .args([
            "e1",
            "e4",
            "e7",
            "--smoke",
            "--variant",
            "ci-smoke",
            "--json-dir",
        ])
        .arg(&dir)
        .output()
        .expect("run experiments harness");
    assert!(
        out.status.success(),
        "harness failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    for exp in ["e1", "e4", "e7"] {
        let path = dir.join(format!("BENCH_{exp}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{exp}: unparseable JSON: {e}"));
        let errors = validate_report_shape(&doc);
        assert!(errors.is_empty(), "{exp}: bad shape: {errors:?}\n{text}");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some(exp));
        assert_eq!(doc.get("variant").unwrap().as_str(), Some("ci-smoke"));
        assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
        // Throughput must be a positive finite number on any real machine.
        let tps = doc
            .get("summary")
            .unwrap()
            .get("tuples_per_sec")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(
            tps.is_finite() && tps > 0.0,
            "{exp}: tuples_per_sec = {tps}"
        );
        // The engine-backed experiments must report engine work.
        if exp != "e7" {
            let firings = doc
                .get("summary")
                .unwrap()
                .get("firings")
                .unwrap()
                .as_f64()
                .unwrap();
            assert!(firings > 0.0, "{exp}: no rule firings recorded");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
