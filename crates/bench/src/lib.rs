//! Workload generators and measurement helpers shared by the Criterion
//! benches and the `experiments` table printer.
//!
//! One module per experiment family (see DESIGN.md §3 for the experiment
//! index). Everything is deterministic given a seed.

pub mod fault_cluster;
pub mod json;
pub mod mesh_cluster;
pub mod workloads;

pub use workloads::*;

use std::time::{Duration, Instant};

/// Run `f` once and return (result, wall time).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals, for table printing.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a ratio with two decimals (guarding zero denominators).
pub fn ratio(num: Duration, den: Duration) -> String {
    if den.as_nanos() == 0 {
        return "inf".into();
    }
    format!("{:.2}", num.as_secs_f64() / den.as_secs_f64())
}
