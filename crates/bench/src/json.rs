//! Dependency-free JSON for the experiment harness: a writer for the
//! `BENCH_*.json` result files and a minimal parser so CI can validate
//! their shape without pulling in serde.
//!
//! The emitted schema (stable; CI's smoke test checks it):
//!
//! ```text
//! {
//!   "experiment": "e1" | "e4" | "e7",
//!   "variant":    free-form tag ("baseline", "interned", ...),
//!   "smoke":      bool,
//!   "peak_rss_kb": u64          // VmHWM proxy, 0 where unsupported
//!   "rows":    [ { per-experiment columns, each numeric or string } ],
//!   "summary": { "tuples_per_sec": f64, "rounds": u64, "firings": u64 }
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order irrelevant: they are
/// sorted, which makes emitted files diff-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always emitted as a finite f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Build an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (strict enough for our own emissions).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        '\r' => write!(f, "\\r")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(v) => {
                write!(f, "[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Json::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at {start}"))
    }
}

/// Peak resident-set size proxy in kB: `VmHWM` from `/proc/self/status`,
/// falling back to current `VmRSS` in sandboxes that omit the high-water
/// mark, and to 0 where the proc filesystem is unavailable.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            let field = |key: &str| {
                status.lines().find_map(|line| {
                    line.strip_prefix(key)?
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse::<u64>()
                        .ok()
                })
            };
            if let Some(kb) = field("VmHWM:").or_else(|| field("VmRSS:")) {
                return kb;
            }
        }
    }
    0
}

/// One experiment's machine-readable result file.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Experiment name ("e1", "e4", "e7").
    pub experiment: String,
    /// Build/config tag distinguishing runs ("baseline", "interned", …).
    pub variant: String,
    /// True when produced by a reduced smoke workload.
    pub smoke: bool,
    /// Per-configuration measurement rows.
    pub rows: Vec<BTreeMap<String, Json>>,
    /// Aggregate throughput and engine counters.
    pub tuples_per_sec: f64,
    /// Aggregate semi-naive rounds across the run.
    pub rounds: u64,
    /// Aggregate rule firings across the run.
    pub firings: u64,
    /// Extra summary counters (engine stats, etc.).
    pub extra: BTreeMap<String, Json>,
}

impl BenchReport {
    /// Start an empty report.
    pub fn new(experiment: &str, variant: &str, smoke: bool) -> Self {
        BenchReport {
            experiment: experiment.to_string(),
            variant: variant.to_string(),
            smoke,
            rows: Vec::new(),
            tuples_per_sec: 0.0,
            rounds: 0,
            firings: 0,
            extra: BTreeMap::new(),
        }
    }

    /// Append a row of `(column, value)` pairs.
    pub fn row(&mut self, cols: impl IntoIterator<Item = (&'static str, Json)>) {
        self.rows
            .push(cols.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
    }

    /// Add a summary counter beyond the required three.
    pub fn summary_extra(&mut self, key: &str, value: impl Into<Json>) {
        self.extra.insert(key.to_string(), value.into());
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut summary: BTreeMap<String, Json> = self.extra.clone();
        summary.insert("tuples_per_sec".into(), Json::Num(self.tuples_per_sec));
        summary.insert("rounds".into(), Json::from(self.rounds));
        summary.insert("firings".into(), Json::from(self.firings));
        Json::obj([
            ("experiment", Json::from(self.experiment.as_str())),
            ("variant", Json::from(self.variant.as_str())),
            ("smoke", Json::from(self.smoke)),
            ("peak_rss_kb", Json::from(peak_rss_kb())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| Json::Obj(r.clone())).collect()),
            ),
            ("summary", Json::Obj(summary)),
        ])
    }

    /// Write the report into `dir`: `BENCH_<experiment>.json`, or
    /// `BENCH_<experiment>_baseline.json` for the `baseline` variant so
    /// A/B runs into the same directory never clobber each other.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let name = if self.variant == "baseline" {
            format!("BENCH_{}_baseline.json", self.experiment)
        } else {
            format!("BENCH_{}.json", self.experiment)
        };
        let path = dir.join(name);
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }
}

/// The `obs` summary block for experiments that report instrumentation
/// overhead (E10/E12): whether the metrics layer is compiled in, the
/// registry's entry counts, and per-subsystem event totals. An A/B pair
/// of runs (default build vs `--features orchestra-obs/off`) is compared
/// by diffing this block next to `tuples_per_sec`.
pub fn obs_block() -> Json {
    let snap = orchestra_obs::snapshot();
    let sum = |prefix: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, value)| *value)
            .sum()
    };
    Json::obj([
        ("enabled", Json::from(orchestra_obs::ENABLED)),
        ("counters", Json::from(snap.counters.len())),
        ("gauges", Json::from(snap.gauges.len())),
        ("histograms", Json::from(snap.histograms.len())),
        ("spans", Json::from(snap.spans.len())),
        ("store_events", Json::from(sum("store."))),
        ("net_events", Json::from(sum("net."))),
        ("server_events", Json::from(sum("server."))),
        ("engine_events", Json::from(sum("engine."))),
    ])
}

/// Validate the `BENCH_*.json` shape. Returns the list of problems (empty
/// when the document conforms). CI's smoke step runs a small workload and
/// feeds the emitted files through this.
pub fn validate_report_shape(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut need_str = |key: &str| {
        if doc.get(key).and_then(Json::as_str).is_none() {
            errs.push(format!("missing string field `{key}`"));
        }
    };
    need_str("experiment");
    need_str("variant");
    if doc.get("peak_rss_kb").and_then(Json::as_f64).is_none() {
        errs.push("missing numeric field `peak_rss_kb`".into());
    }
    match doc.get("rows").and_then(Json::as_arr) {
        None => errs.push("missing array field `rows`".into()),
        Some(rows) => {
            if rows.is_empty() {
                errs.push("`rows` must be non-empty".into());
            }
            for (i, r) in rows.iter().enumerate() {
                if !matches!(r, Json::Obj(_)) {
                    errs.push(format!("rows[{i}] is not an object"));
                } else if r.get("tuples_per_sec").and_then(Json::as_f64).is_none() {
                    errs.push(format!("rows[{i}] missing numeric `tuples_per_sec`"));
                }
            }
        }
    }
    match doc.get("summary") {
        Some(s @ Json::Obj(_)) => {
            for key in ["tuples_per_sec", "rounds", "firings"] {
                if s.get(key).and_then(Json::as_f64).is_none() {
                    errs.push(format!("summary missing numeric `{key}`"));
                }
            }
        }
        _ => errs.push("missing object field `summary`".into()),
    }
    // The `obs` block is optional (only E10/E12 emit it), but when
    // present it must carry the A/B-comparison fields.
    if let Some(obs) = doc.get("summary").and_then(|s| s.get("obs")) {
        if !matches!(obs.get("enabled"), Some(Json::Bool(_))) {
            errs.push("summary.obs missing bool `enabled`".into());
        }
        for key in ["counters", "gauges", "histograms", "spans"] {
            if obs.get(key).and_then(Json::as_f64).is_none() {
                errs.push(format!("summary.obs missing numeric `{key}`"));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_report() {
        let mut r = BenchReport::new("e1", "baseline", true);
        r.row([
            ("topology", Json::from("chain")),
            ("tuples_per_sec", Json::Num(123.5)),
        ]);
        r.tuples_per_sec = 123.5;
        r.rounds = 7;
        r.firings = 42;
        let text = r.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert!(validate_report_shape(&parsed).is_empty(), "{text}");
        assert_eq!(
            parsed.get("summary").unwrap().get("firings").unwrap(),
            &Json::Num(42.0)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{}x").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = Json::parse(r#"{"a":"x\ny","b":[1,-2.5,1e3],"c":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn shape_validator_flags_problems() {
        let bad = Json::parse(r#"{"experiment":"e1","rows":[]}"#).unwrap();
        let errs = validate_report_shape(&bad);
        assert!(errs.iter().any(|e| e.contains("variant")));
        assert!(errs.iter().any(|e| e.contains("non-empty")));
        assert!(errs.iter().any(|e| e.contains("summary")));
    }
}
