//! The experiment harness: regenerates every table/figure of the
//! reproduction (DESIGN.md §3, results recorded in EXPERIMENTS.md).
//!
//! Usage:
//! ```text
//! cargo run --release -p orchestra-bench --bin experiments              # all
//! cargo run --release -p orchestra-bench --bin experiments -- e4 e6    # some
//! cargo run --release -p orchestra-bench --bin experiments -- \
//!     e1 e4 e7 --json-dir . --variant interned                          # emit BENCH_*.json
//! cargo run --release -p orchestra-bench --bin experiments -- \
//!     e1 --smoke --json-dir target/bench                                # CI smoke
//! cargo run --release -p orchestra-bench --bin experiments -- \
//!     --bind 0.0.0.0:7654                                               # serve an archive
//! cargo run --release -p orchestra-bench --bin experiments -- \
//!     e10 --connect peer-a:7654                                         # E10 vs a real peer
//! ```
//!
//! With `--json-dir`, experiments E1/E4/E7/E8/E10/E11/E12/E13 additionally
//! write machine-readable `BENCH_*.json` (tuples/sec, semi-naive rounds,
//! rule firings, paged fetch + availability counters, thread-scaling
//! speedups and stats-parity flags, mesh-cluster convergence latency +
//! bytes shipped, and a peak-RSS proxy); `--smoke` shrinks the workloads
//! for CI, `--variant <tag>` labels the run (e.g. `baseline` vs
//! `interned`). E12 spawns child OS processes of this same binary (a
//! hidden `--e12-child` mode) to run the gossiping mesh across real
//! process boundaries.

use orchestra_bench::json::{BenchReport, Json};
use orchestra_bench::*;
use orchestra_core::demo;
use orchestra_datalog::{DeletionAlgorithm, Engine, EngineStats, EvalOptions};
use orchestra_net::{PeerServer, RemoteOptions, RemoteStore};
use orchestra_provenance::{Boolean, Counting, Semiring, Tropical};
use orchestra_reconcile::{Reconciler, TrustPolicy};
use orchestra_relational::tuple;
use orchestra_store::{
    CacheMode, DurableOptions, DurableStore, FetchCursor, ReplicatedStore, SyncPolicy, UpdateStore,
};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::path::PathBuf;
use std::sync::Arc;

/// Harness configuration parsed from the command line.
pub struct Opts {
    names: Vec<String>,
    /// Reduced workloads for CI smoke runs.
    pub smoke: bool,
    /// Where to write `BENCH_*.json` (omitted → tables only).
    pub json_dir: Option<PathBuf>,
    /// Run tag recorded in the JSON (`baseline`, `interned`, …).
    pub variant: String,
    /// Serve an archive over TCP at this address instead of running
    /// experiments (the server half of a two-process E10).
    pub bind: Option<String>,
    /// Run E10 against an already-running peer server at this address
    /// instead of spawning loopback threads.
    pub connect: Option<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut opts = Opts {
            names: Vec::new(),
            smoke: false,
            json_dir: None,
            variant: "dev".to_string(),
            bind: None,
            connect: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--json-dir" => {
                    opts.json_dir = Some(PathBuf::from(
                        it.next().expect("--json-dir needs a path").clone(),
                    ))
                }
                "--variant" => {
                    opts.variant = it.next().expect("--variant needs a tag").clone();
                }
                "--bind" => {
                    opts.bind = Some(it.next().expect("--bind needs an address").clone());
                }
                "--connect" => {
                    opts.connect = Some(it.next().expect("--connect needs an address").clone());
                }
                name => opts.names.push(name.to_string()),
            }
        }
        opts
    }

    fn want(&self, name: &str) -> bool {
        self.names.is_empty() || self.names.iter().any(|a| a.eq_ignore_ascii_case(name))
    }

    fn emit(&self, report: &BenchReport) {
        if let Some(dir) = &self.json_dir {
            let path = report.write_to(dir).expect("write BENCH json");
            println!("  → wrote {}", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden child mode: one process of the E12 mesh cluster, driven by
    // the parent over stdin/stdout. Checked before option parsing so the
    // positional child arguments never collide with experiment names.
    if args.first().map(String::as_str) == Some("--e12-child") {
        orchestra_bench::mesh_cluster::e12_child_main(&args[1..]);
        return;
    }

    let opts = Opts::parse(&args);

    if let Some(addr) = &opts.bind {
        serve_archive(addr);
        return;
    }

    println!("Orchestra CDSS reproduction — experiment harness");
    println!("(shapes, not absolute numbers, are the reproduction target; see EXPERIMENTS.md)\n");

    if opts.want("e1") {
        e1_end_to_end(&opts);
    }
    if opts.want("e2") {
        e2_bionetwork();
    }
    if opts.want("e3") {
        e3_scenarios();
    }
    if opts.want("e4") {
        e4_incremental(&opts);
    }
    if opts.want("e5") {
        e5_prov_overhead();
    }
    if opts.want("e6") {
        e6_deletion();
    }
    if opts.want("e7") {
        e7_reconcile(&opts);
    }
    if opts.want("e8") {
        e8_store(&opts);
    }
    if opts.want("e9") {
        e9_semiring();
    }
    if opts.want("e10") {
        e10_network(&opts);
    }
    if opts.want("e11") {
        e11_threads(&opts);
    }
    if opts.want("e12") {
        let report = orchestra_bench::mesh_cluster::e12_mesh_cluster(opts.smoke, &opts.variant);
        opts.emit(&report);
    }
    if opts.want("e13") {
        let report = orchestra_bench::fault_cluster::e13_fault_cluster(opts.smoke, &opts.variant);
        opts.emit(&report);
    }
}

/// `--bind`: run the server half of a two-process E10 — an empty
/// in-memory archive served over TCP until the process is killed. The
/// client half runs `experiments e10 --connect <this address>` on any
/// machine that can reach it.
fn serve_archive(addr: &str) {
    let server = PeerServer::bind(addr, Arc::new(orchestra_store::InMemoryStore::new()))
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    println!(
        "serving an in-memory archive at {} (protocol v{}) — ctrl-c to stop",
        server.local_addr(),
        orchestra_net::PROTOCOL_VERSION
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Sum the translation-engine stats over all peers of a CDSS.
fn cdss_engine_stats(cdss: &orchestra_core::Cdss) -> EngineStats {
    let mut total = EngineStats::default();
    for id in cdss.peer_ids() {
        total += cdss.peer(&id).unwrap().engine_stats();
    }
    total
}

/// E1 — Figure 1 architecture: end-to-end publish→translate→reconcile
/// epochs over chain and star topologies.
pub fn e1_end_to_end(opts: &Opts) -> BenchReport {
    println!("── E1: end-to-end update exchange (Fig. 1 architecture) ──");
    println!(
        "{:<10} {:>6} {:>9} {:>12} {:>14} {:>12}",
        "topology", "peers", "updates", "publish ms", "reconcile ms", "tuples/s"
    );
    let mut report = BenchReport::new("e1", &opts.variant, opts.smoke);
    let (chain_peers, chain_updates): (&[usize], &[usize]) = if opts.smoke {
        (&[2], &[32])
    } else {
        (&[2, 4, 8], &[64, 256])
    };
    let (mut total_tuples, mut total_secs) = (0f64, 0f64);
    let (mut store_pages, mut store_unavailable) = (0u64, 0u64);
    let mut agg = EngineStats::default();
    for &peers in chain_peers {
        for &updates in chain_updates {
            // Chain: publish at head, reconcile down the chain.
            let mut cdss = chain_cdss(peers);
            let head = PeerId::new("P0");
            let (_, t_pub) = timed(|| publish_inserts(&mut cdss, &head, 0, updates, 8));
            let (_, t_rec) = timed(|| {
                for i in 1..peers {
                    cdss.reconcile(&PeerId::new(format!("P{i}"))).unwrap();
                }
            });
            let tail_tuples = peer_total(&cdss, &format!("P{}", peers - 1));
            assert_eq!(tail_tuples, updates, "all updates reach the chain tail");
            let sst = cdss.stats().store;
            store_pages += sst.pages;
            store_unavailable += sst.unavailable;
            let stats = cdss_engine_stats(&cdss);
            agg.index_probes += stats.index_probes;
            // Symbol count is a gauge of one CDSS, not a flow: take the
            // largest configuration rather than summing across runs.
            agg.interner_symbols = agg.interner_symbols.max(stats.interner_symbols);
            agg.interner_hits += stats.interner_hits;
            let delivered = (updates * peers) as f64;
            let secs = (t_pub + t_rec).as_secs_f64();
            let tps = delivered / secs.max(1e-9);
            total_tuples += delivered;
            total_secs += secs;
            report.rounds += stats.rounds;
            report.firings += stats.firings;
            report.row([
                ("topology", Json::from("chain")),
                ("peers", Json::from(peers)),
                ("updates", Json::from(updates)),
                ("publish_ms", Json::Num(t_pub.as_secs_f64() * 1e3)),
                ("reconcile_ms", Json::Num(t_rec.as_secs_f64() * 1e3)),
                ("tuples_per_sec", Json::Num(tps)),
                ("rounds", Json::from(stats.rounds)),
                ("firings", Json::from(stats.firings)),
            ]);
            println!(
                "{:<10} {:>6} {:>9} {:>12} {:>14} {:>12.0}",
                "chain",
                peers,
                updates,
                ms(t_pub),
                ms(t_rec),
                tps
            );
        }
    }
    let star_peers: &[usize] = if opts.smoke { &[4] } else { &[4, 8] };
    let star_updates = if opts.smoke { 32usize } else { 128 };
    for &peers in star_peers {
        let updates = star_updates;
        let mut cdss = star_cdss(peers);
        let (_, t_pub) = timed(|| {
            for i in 1..peers {
                publish_inserts(
                    &mut cdss,
                    &PeerId::new(format!("P{i}")),
                    (i as i64) * 10_000,
                    updates / (peers - 1),
                    8,
                );
            }
        });
        let (_, t_rec) = timed(|| {
            cdss.reconcile(&PeerId::new("Hub")).unwrap();
            for i in 1..peers {
                cdss.reconcile(&PeerId::new(format!("P{i}"))).unwrap();
            }
        });
        let sst = cdss.stats().store;
        store_pages += sst.pages;
        store_unavailable += sst.unavailable;
        let stats = cdss_engine_stats(&cdss);
        agg.index_probes += stats.index_probes;
        agg.interner_symbols = agg.interner_symbols.max(stats.interner_symbols);
        agg.interner_hits += stats.interner_hits;
        let delivered: f64 = cdss
            .peer_ids()
            .iter()
            .map(|id| peer_total(&cdss, id.name()) as f64)
            .sum();
        let secs = (t_pub + t_rec).as_secs_f64();
        let tps = delivered / secs.max(1e-9);
        total_tuples += delivered;
        total_secs += secs;
        report.rounds += stats.rounds;
        report.firings += stats.firings;
        report.row([
            ("topology", Json::from("star")),
            ("peers", Json::from(peers)),
            ("updates", Json::from(updates)),
            ("publish_ms", Json::Num(t_pub.as_secs_f64() * 1e3)),
            ("reconcile_ms", Json::Num(t_rec.as_secs_f64() * 1e3)),
            ("tuples_per_sec", Json::Num(tps)),
            ("rounds", Json::from(stats.rounds)),
            ("firings", Json::from(stats.firings)),
        ]);
        println!(
            "{:<10} {:>6} {:>9} {:>12} {:>14} {:>12.0}",
            "star",
            peers,
            updates,
            ms(t_pub),
            ms(t_rec),
            tps
        );
    }
    println!();
    report.tuples_per_sec = total_tuples / total_secs.max(1e-9);
    report.summary_extra("index_probes", agg.index_probes);
    report.summary_extra("interner_symbols", agg.interner_symbols);
    report.summary_extra("interner_hits", agg.interner_hits);
    report.summary_extra("store_pages", store_pages);
    report.summary_extra("store_unavailable", store_unavailable);
    opts.emit(&report);
    report
}

/// E2 — Figure 2 network: the bioinformatics CDSS under growing load.
fn e2_bionetwork() {
    println!("── E2: Figure 2 bioinformatics network ──");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "seqs", "publish ms", "dresden ms", "crete ms", "ops rows"
    );
    for &n in &[16usize, 64, 256, 1024] {
        let (mut cdss, t_pub) = timed(|| bio_cdss_seeded(n));
        let dresden = PeerId::new("Dresden");
        let crete = PeerId::new("Crete");
        let (_, t_d) = timed(|| cdss.reconcile(&dresden).unwrap());
        let (_, t_c) = timed(|| cdss.reconcile(&crete).unwrap());
        let ops = cdss
            .peer(&dresden)
            .unwrap()
            .instance()
            .relation("OPS")
            .unwrap()
            .len();
        assert_eq!(ops, n, "every sequence joins into one OPS row");
        println!(
            "{:>8} {:>12} {:>14} {:>14} {:>12}",
            n,
            ms(t_pub),
            ms(t_d),
            ms(t_c),
            ops
        );
    }
    println!();
}

/// E3 — §4 scenarios: a pass/fail table (the full assertions live in
/// tests/demo_scenarios.rs; this reruns the library-level checks).
fn e3_scenarios() {
    println!("── E3: demonstration scenarios (§4) ──");
    type Check = (&'static str, fn() -> bool);
    let checks: [Check; 5] = [
        ("1: Alaska↔Dresden translation", scenario1_ok),
        ("2: priority rejection + cascade", scenario2_ok),
        ("3: distrusted antecedent pulled in", scenario3_ok),
        ("4: deferral + manual resolution", scenario4_ok),
        ("5: offline publisher, archived updates", scenario5_ok),
    ];
    for (name, f) in checks {
        println!(
            "  scenario {name:<42} {}",
            if f() { "PASS" } else { "FAIL" }
        );
    }
    println!();
}

fn scenario1_ok() -> bool {
    let mut cdss = demo::figure2().unwrap();
    cdss.publish_transaction(
        &PeerId::new("Alaska"),
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "MRV"]),
        ],
    )
    .unwrap();
    cdss.reconcile(&PeerId::new("Dresden")).unwrap();
    cdss.peer(&PeerId::new("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "MRV"])
}

fn scenario2_ok() -> bool {
    let mut cdss = demo::figure2().unwrap();
    cdss.publish_transaction(
        &PeerId::new("Beijing"),
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "B"]),
        ],
    )
    .unwrap();
    let d1 = cdss
        .publish_transaction(
            &PeerId::new("Dresden"),
            vec![Update::insert("OPS", tuple!["HIV", "gp120", "D"])],
        )
        .unwrap();
    let r = cdss.reconcile(&PeerId::new("Crete")).unwrap();
    let first = r.outcome.rejected.contains(&d1);
    let d2 = cdss
        .publish_transaction(
            &PeerId::new("Dresden"),
            vec![Update::modify(
                "OPS",
                tuple!["HIV", "gp120", "D"],
                tuple!["HIV", "gp120", "D2"],
            )],
        )
        .unwrap();
    let r = cdss.reconcile(&PeerId::new("Crete")).unwrap();
    first && r.outcome.rejected.contains(&d2)
}

fn scenario3_ok() -> bool {
    let mut cdss = demo::figure2().unwrap();
    let a = cdss
        .publish_transaction(
            &PeerId::new("Alaska"),
            vec![
                Update::insert("O", tuple!["HIV", 1]),
                Update::insert("P", tuple!["gp120", 2]),
                Update::insert("S", tuple![1, 2, "V1"]),
            ],
        )
        .unwrap();
    cdss.reconcile(&PeerId::new("Beijing")).unwrap();
    let b = cdss
        .publish_transaction(
            &PeerId::new("Beijing"),
            vec![Update::modify("S", tuple![1, 2, "V1"], tuple![1, 2, "V2"])],
        )
        .unwrap();
    let r = cdss.reconcile(&PeerId::new("Crete")).unwrap();
    r.outcome.accepted.contains(&a) && r.outcome.accepted.contains(&b)
}

fn scenario4_ok() -> bool {
    let mut cdss = demo::figure2().unwrap();
    cdss.publish_transaction(
        &PeerId::new("Alaska"),
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
        ],
    )
    .unwrap();
    cdss.reconcile(&PeerId::new("Beijing")).unwrap();
    let a = cdss
        .publish_transaction(
            &PeerId::new("Alaska"),
            vec![Update::insert("S", tuple![1, 2, "A"])],
        )
        .unwrap();
    let b = cdss
        .publish_transaction(
            &PeerId::new("Beijing"),
            vec![Update::insert("S", tuple![1, 2, "B"])],
        )
        .unwrap();
    let r = cdss.reconcile(&PeerId::new("Dresden")).unwrap();
    let deferred = r.outcome.deferred.contains(&a) && r.outcome.deferred.contains(&b);
    let res = cdss.resolve(&PeerId::new("Dresden"), &b).unwrap();
    deferred && res.outcome.accepted.iter().any(|t| t.id == b) && res.outcome.rejected.contains(&a)
}

fn scenario5_ok() -> bool {
    let store = ReplicatedStore::new(8, 3).unwrap();
    let mut cdss = demo::figure2_with_store(Box::new(store)).unwrap();
    cdss.publish_transaction(
        &PeerId::new("Beijing"),
        vec![Update::insert("O", tuple!["Mouse", 1])],
    )
    .unwrap();
    let r = cdss.reconcile(&PeerId::new("Alaska")).unwrap();
    r.outcome.accepted.len() == 1
}

/// E4 — incremental vs full recomputation of update exchange.
pub fn e4_incremental(opts: &Opts) -> BenchReport {
    println!("── E4: incremental vs full recomputation (companion [5]) ──");
    println!(
        "{:>8} {:>8} {:>14} {:>12} {:>10} {:>12}",
        "base", "delta", "full ms", "incr ms", "speedup", "tuples/s"
    );
    let mut report = BenchReport::new("e4", &opts.variant, opts.smoke);
    let (bases, deltas): (&[usize], &[usize]) = if opts.smoke {
        (&[128], &[8, 32])
    } else {
        (&[512], &[8, 32, 128, 512])
    };
    let (schema, rules) = bio_engine_parts();
    let (mut total_tuples, mut total_secs) = (0f64, 0f64);
    let mut agg = EngineStats::default();
    for &base in bases {
        for &delta in deltas {
            let base_facts = bio_base_facts(base);
            let delta_facts: Vec<_> = bio_base_facts(base + delta)
                .into_iter()
                .skip(base_facts.len())
                .collect();
            // Warm engine, then incremental delta.
            let mut warm = warm_engine(schema.clone(), rules.clone(), &base_facts, true);
            let before = warm.stats();
            let tuples_before = warm.total_tuples();
            let (_, t_incr) = timed(|| {
                for (rel, t) in &delta_facts {
                    warm.insert_base(rel, t.clone()).unwrap();
                }
                warm.propagate().unwrap();
            });
            let after = warm.stats();
            agg.index_builds += after.index_builds - before.index_builds;
            agg.index_probes += after.index_probes - before.index_probes;
            agg.interner_symbols = agg.interner_symbols.max(after.interner_symbols);
            agg.interner_hits += after.interner_hits - before.interner_hits;
            agg.skolem_fast_path += after.skolem_fast_path - before.skolem_fast_path;
            let incr_tuples = (warm.total_tuples() - tuples_before) as f64;
            // Full recomputation from scratch.
            let (full, t_full) = timed(|| {
                let mut all = base_facts.clone();
                all.extend(delta_facts.iter().cloned());
                warm_engine(schema.clone(), rules.clone(), &all, true)
            });
            assert_eq!(full.total_tuples(), warm.total_tuples());
            let incr_secs = t_incr.as_secs_f64();
            let tps = incr_tuples / incr_secs.max(1e-9);
            total_tuples += incr_tuples;
            total_secs += incr_secs;
            let rounds = after.rounds - before.rounds;
            let firings = after.firings - before.firings;
            report.rounds += rounds;
            report.firings += firings;
            report.row([
                ("base", Json::from(base)),
                ("delta", Json::from(delta)),
                ("full_ms", Json::Num(t_full.as_secs_f64() * 1e3)),
                ("incr_ms", Json::Num(incr_secs * 1e3)),
                (
                    "speedup",
                    Json::Num(t_full.as_secs_f64() / incr_secs.max(1e-9)),
                ),
                ("tuples_per_sec", Json::Num(tps)),
                ("rounds", Json::from(rounds)),
                ("firings", Json::from(firings)),
            ]);
            println!(
                "{:>8} {:>8} {:>14} {:>12} {:>10} {:>12.0}",
                base,
                delta,
                ms(t_full),
                ms(t_incr),
                ratio(t_full, t_incr),
                tps
            );
        }
    }
    println!(
        "  engine counters (incremental runs): {} index builds, {} probes, \
         {} interned symbols, {} intern hits, {} skolem fast-path",
        agg.index_builds,
        agg.index_probes,
        agg.interner_symbols,
        agg.interner_hits,
        agg.skolem_fast_path
    );
    println!();
    report.tuples_per_sec = total_tuples / total_secs.max(1e-9);
    report.summary_extra("index_builds", agg.index_builds);
    report.summary_extra("index_probes", agg.index_probes);
    report.summary_extra("interner_symbols", agg.interner_symbols);
    report.summary_extra("interner_hits", agg.interner_hits);
    report.summary_extra("skolem_fast_path", agg.skolem_fast_path);
    // E4 drives the engine directly (no archive): the pagination and
    // availability counters exist in every report for uniform tooling.
    report.summary_extra("store_pages", 0u64);
    report.summary_extra("store_unavailable", 0u64);
    opts.emit(&report);
    report
}

/// E5 — provenance overhead: full N\[X\] graph vs no provenance.
fn e5_prov_overhead() {
    println!("── E5: provenance tracking overhead (companion [5]) ──");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "seqs", "no-prov ms", "with-prov ms", "overhead", "derivations"
    );
    let (schema, rules) = bio_engine_parts();
    for &n in &[128usize, 512, 2048] {
        let facts = bio_base_facts(n);
        let (_e0, t0) = timed(|| warm_engine(schema.clone(), rules.clone(), &facts, false));
        let (e1, t1) = timed(|| warm_engine(schema.clone(), rules.clone(), &facts, true));
        println!(
            "{:>8} {:>14} {:>14} {:>10} {:>12}",
            n,
            ms(t0),
            ms(t1),
            ratio(t1, t0),
            e1.stats().derivations
        );
    }
    println!();
}

/// E6 — deletion propagation: provenance-based vs DRed.
fn e6_deletion() {
    println!("── E6: deletion propagation, provenance vs DRed (companion [5]) ──");
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>10}",
        "seqs", "deleted", "dred ms", "prov ms", "speedup"
    );
    let (schema, rules) = bio_engine_parts();
    for &n in &[256usize, 1024] {
        for &frac in &[0.05f64, 0.25] {
            let facts = bio_base_facts(n);
            // Delete S rows (the join collapses).
            let victims: Vec<_> = facts
                .iter()
                .filter(|(rel, _)| *rel == "Alaska.S")
                .take(((n as f64) * frac) as usize)
                .cloned()
                .collect();
            let mut dred = warm_engine(schema.clone(), rules.clone(), &facts, true);
            let (_, t_dred) = timed(|| {
                for (rel, t) in &victims {
                    dred.remove_base(rel, t, DeletionAlgorithm::DRed).unwrap();
                }
            });
            let mut prov = warm_engine(schema.clone(), rules.clone(), &facts, true);
            let (_, t_prov) = timed(|| {
                for (rel, t) in &victims {
                    prov.remove_base(rel, t, DeletionAlgorithm::ProvenanceBased)
                        .unwrap();
                }
            });
            assert_eq!(dred.total_tuples(), prov.total_tuples());
            println!(
                "{:>8} {:>10} {:>14} {:>12} {:>10}",
                n,
                victims.len(),
                ms(t_dred),
                ms(t_prov),
                ratio(t_dred, t_prov)
            );
        }
    }
    println!();
}

/// E7 — reconciliation scaling (companion \[11\]).
pub fn e7_reconcile(opts: &Opts) -> BenchReport {
    println!("── E7: reconciliation scaling (companion [11]) ──");
    println!(
        "{:>8} {:>9} {:>8} {:>12} {:>12} {:>9} {:>9} {:>9} {:>10}",
        "txns",
        "conflict%",
        "depth",
        "greedy ms",
        "naive ms",
        "accept",
        "defer",
        "reject",
        "txns/s"
    );
    let mut report = BenchReport::new("e7", &opts.variant, opts.smoke);
    let (sizes, pcts): (&[usize], &[u32]) = if opts.smoke {
        (&[256], &[0, 20])
    } else {
        (&[256, 1024, 4096], &[0, 5, 20, 50])
    };
    let (mut total_txns, mut total_secs) = (0f64, 0f64);
    for &n in sizes {
        for &pct in pcts {
            let depth = 3usize;
            let cands = reconcile_candidates(n, pct, depth, 42);
            let schema = kv_schema();
            let (_, t_naive) = timed(|| naive_reconcile(&cands, &schema));
            let mut r = Reconciler::new(schema);
            let (_, t_greedy) =
                timed(|| r.reconcile(cands.clone(), &TrustPolicy::open(1)).unwrap());
            let accepted = cands
                .iter()
                .filter(|c| r.decision(c.id()) == Some(orchestra_reconcile::Decision::Accepted))
                .count();
            let deferred = r.deferred().len();
            let rejected = cands
                .iter()
                .filter(|c| r.decision(c.id()) == Some(orchestra_reconcile::Decision::Rejected))
                .count();
            let secs = t_greedy.as_secs_f64();
            let tps = n as f64 / secs.max(1e-9);
            total_txns += n as f64;
            total_secs += secs;
            report.row([
                ("txns", Json::from(n)),
                ("conflict_pct", Json::from(pct as u64)),
                ("depth", Json::from(depth)),
                ("greedy_ms", Json::Num(secs * 1e3)),
                ("naive_ms", Json::Num(t_naive.as_secs_f64() * 1e3)),
                ("accepted", Json::from(accepted)),
                ("deferred", Json::from(deferred)),
                ("rejected", Json::from(rejected)),
                // Single-update transactions: txns/sec is tuples/sec.
                ("tuples_per_sec", Json::Num(tps)),
            ]);
            println!(
                "{:>8} {:>9} {:>8} {:>12} {:>12} {:>9} {:>9} {:>9} {:>10.0}",
                n,
                pct,
                depth,
                ms(t_greedy),
                ms(t_naive),
                accepted,
                deferred,
                rejected,
                tps
            );
        }
    }
    println!();
    report.tuples_per_sec = total_txns / total_secs.max(1e-9);
    // E7 drives the reconciler directly (no archive): counters present
    // for uniform tooling, always zero here.
    report.summary_extra("store_pages", 0u64);
    report.summary_extra("store_unavailable", 0u64);
    opts.emit(&report);
    report
}

/// E8 — archived availability under churn × replication factor, measured
/// through the paged read path: the scan makes partial progress past dead
/// payloads instead of failing, so the table reports how much of the
/// archive each configuration can still deliver (and in how many pages).
pub fn e8_store(opts: &Opts) -> BenchReport {
    println!("── E8: store availability under churn (scenario 5 at scale) ──");
    println!(
        "{:>6} {:>12} {:>10} {:>11} {:>9} {:>7} {:>10} {:>12}",
        "repl", "churn", "avail %", "reachable", "unavail", "pages", "probes", "tuples/s"
    );
    let mut report = BenchReport::new("e8", &opts.variant, opts.smoke);
    let n_nodes = 64usize;
    let n_txns: u64 = if opts.smoke { 200 } else { 1000 };
    let page_limit = 256usize;
    let (repls, churns): (&[usize], &[usize]) = if opts.smoke {
        (&[1, 3], &[25])
    } else {
        (&[1, 2, 3, 5], &[10, 25, 50])
    };
    let (mut total_reachable, mut total_secs) = (0f64, 0f64);
    let (mut total_pages, mut total_unavail) = (0u64, 0u64);
    for &repl in repls {
        for &churn_pct in churns {
            let store = ReplicatedStore::new(n_nodes, repl).unwrap();
            let txns: Vec<Transaction> = (0..n_txns)
                .map(|i| {
                    Transaction::new(
                        TxnId::new(PeerId::new("pub"), i),
                        Epoch::new(1),
                        vec![Update::insert("R", tuple![i as i64, 0])],
                    )
                })
                .collect();
            store.publish(Epoch::new(1), txns).unwrap();
            let down = n_nodes * churn_pct / 100;
            for node in 0..down {
                // Deterministic spread of failures.
                store.take_node_down((node * 7) % n_nodes);
            }
            let avail = store.availability() * 100.0;
            let ((reachable, unavailable, pages), t_scan) = timed(|| {
                let start = FetchCursor::after_epoch(Epoch::zero());
                let (mut ok, mut lost, mut pages) = (0u64, 0u64, 0u64);
                for page in orchestra_store::pages(&store, start, page_limit) {
                    let page = page.unwrap();
                    ok += page.txns.len() as u64;
                    lost += page.unavailable.len() as u64;
                    pages += 1;
                }
                (ok, lost, pages)
            });
            assert_eq!(reachable + unavailable, n_txns, "every position scanned");
            let secs = t_scan.as_secs_f64();
            let tps = reachable as f64 / secs.max(1e-9);
            total_reachable += reachable as f64;
            total_secs += secs;
            total_pages += pages;
            total_unavail += unavailable;
            report.row([
                ("repl", Json::from(repl)),
                ("churn_pct", Json::from(churn_pct)),
                ("availability_pct", Json::Num(avail)),
                ("reachable", Json::from(reachable)),
                ("unavailable", Json::from(unavailable)),
                ("pages", Json::from(pages)),
                ("probes", Json::from(store.stats().probes)),
                ("tuples_per_sec", Json::Num(tps)),
            ]);
            println!(
                "{:>6} {:>11}% {:>10.2} {:>11} {:>9} {:>7} {:>10} {:>12.0}",
                repl,
                churn_pct,
                avail,
                reachable,
                unavailable,
                pages,
                store.stats().probes,
                tps
            );
        }
    }
    println!();
    e8_durable(n_txns);
    report.tuples_per_sec = total_reachable / total_secs.max(1e-9);
    report.summary_extra("store_pages", total_pages);
    report.summary_extra("store_unavailable", total_unavail);
    opts.emit(&report);
    report
}

/// E8b — the durable archive: publish cost per sync policy, fetch cost per
/// cache tier, and crash-recovery (reopen) cost raw vs compacted.
fn e8_durable(n_txns: u64) {
    println!("── E8b: durable archive (WAL + snapshots) ──");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12}",
        "sync policy", "publish ms", "fetch ms", "reopen ms", "txns"
    );
    let make_txns = || -> Vec<Transaction> {
        (0..n_txns)
            .map(|i| {
                Transaction::new(
                    TxnId::new(PeerId::new("pub"), i),
                    Epoch::new(1),
                    vec![Update::insert("R", tuple![i as i64, 0])],
                )
            })
            .collect()
    };
    for (label, policy) in [
        ("fsync-always", SyncPolicy::Always),
        ("fsync-every-64", SyncPolicy::EveryN(64)),
        ("fsync-never", SyncPolicy::Never),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "orchestra-e8-durable-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions {
            sync_policy: policy,
            ..DurableOptions::default()
        };
        let store = DurableStore::open_with(&dir, opts).unwrap();
        let batches: Vec<Vec<Transaction>> = make_txns().chunks(100).map(|c| c.to_vec()).collect();
        let (_, t_pub) = timed(|| {
            for (i, batch) in batches.into_iter().enumerate() {
                store.publish(Epoch::new(i as u64 + 1), batch).unwrap();
            }
            store.sync().unwrap();
        });
        let (fetched, t_fetch) = timed(|| store.fetch_since(Epoch::zero()).unwrap().len());
        assert_eq!(fetched as u64, n_txns);
        drop(store);
        let (reopened, t_reopen) = timed(|| DurableStore::open_with(&dir, opts).unwrap());
        assert_eq!(reopened.len() as u64, n_txns);
        println!(
            "{:>16} {:>12} {:>12} {:>12} {:>12}",
            label,
            ms(t_pub),
            ms(t_fetch),
            ms(t_reopen),
            reopened.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!(
        "\n{:>16} {:>14} {:>14}",
        "read tier", "cold fetch ms", "reopen ms"
    );
    for (label, cache, compact) in [
        ("cached+wal", CacheMode::Cached, false),
        ("disk-only+wal", CacheMode::DiskOnly, false),
        ("disk-only+snap", CacheMode::DiskOnly, true),
    ] {
        let dir =
            std::env::temp_dir().join(format!("orchestra-e8-tier-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions {
            cache,
            segment_max_bytes: 64 * 1024,
            ..DurableOptions::default()
        };
        let store = DurableStore::open_with(&dir, opts).unwrap();
        for (i, batch) in make_txns().chunks(100).enumerate() {
            store
                .publish(Epoch::new(i as u64 + 1), batch.to_vec())
                .unwrap();
        }
        if compact {
            store.compact().unwrap();
        }
        let (n, t_fetch) = timed(|| store.fetch_since(Epoch::zero()).unwrap().len());
        assert_eq!(n as u64, n_txns);
        drop(store);
        let (reopened, t_reopen) = timed(|| DurableStore::open_with(&dir, opts).unwrap());
        assert_eq!(reopened.len() as u64, n_txns);
        println!("{:>16} {:>14} {:>14}", label, ms(t_fetch), ms(t_reopen));
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!();
}

/// E9 — semiring algebra microbenchmarks (companion \[6\]).
fn e9_semiring() {
    println!("── E9: provenance polynomial operations (companion [6]) ──");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "terms", "vars", "plus ms", "times ms", "eval(B) ms", "eval(Trop) ms"
    );
    for &(terms, vars) in &[(16usize, 8u32), (64, 16), (256, 32)] {
        let a = random_polynomial(terms, vars, 1);
        let b = random_polynomial(terms, vars, 2);
        let (_, t_plus) = timed(|| {
            for _ in 0..100 {
                let _ = a.plus(&b);
            }
        });
        let (_, t_times) = timed(|| {
            for _ in 0..10 {
                let _ = a.times(&b);
            }
        });
        let (_, t_bool) = timed(|| {
            for _ in 0..100 {
                let _ = a.eval(|v| Boolean(v % 3 != 0));
            }
        });
        let (_, t_trop) = timed(|| {
            for _ in 0..100 {
                let _ = a.eval(|v| Tropical::cost((*v as u64) % 7));
            }
        });
        // Sanity: counting evaluation with all-1 equals sum of coefficients.
        let total: u64 = a.iter().map(|(_, c)| c).sum();
        assert_eq!(a.eval(|_| Counting(1)), Counting(total));
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>14} {:>14}",
            terms,
            vars,
            ms(t_plus),
            ms(t_times),
            ms(t_bool),
            ms(t_trop)
        );
    }
    println!();
}

/// E10 — networked peers: the E8 paged-availability workload with the
/// archive on the other side of real TCP sockets. Loopback by default
/// (server threads in this process); `--connect <addr>` points the
/// client half at a real peer started with `--bind <addr>` on another
/// machine. Reports publish/scan throughput over the wire, round trips,
/// and the transport→`Unavailable` mapping a dead endpoint produces.
pub fn e10_network(opts: &Opts) -> BenchReport {
    println!("── E10: networked peers (UpdateStore over TCP) ──");
    println!(
        "{:>10} {:>7} {:>6} {:>12} {:>10} {:>7} {:>11} {:>12}",
        "mode", "txns", "limit", "publish ms", "scan ms", "pages", "roundtrips", "tuples/s"
    );
    let mut report = BenchReport::new("e10", &opts.variant, opts.smoke);
    let n_txns: u64 = if opts.smoke { 200 } else { 2000 };
    let limits: &[usize] = if opts.smoke { &[64] } else { &[64, 256, 1024] };
    let client_opts = RemoteOptions::default();

    // Unique publisher name so repeated runs against one long-lived
    // `--bind` server never collide on transaction ids.
    let publisher = format!("pub-{}", std::process::id());
    let make_txns = |epoch_base: u64| -> Vec<Vec<Transaction>> {
        (0..n_txns)
            .map(|i| {
                Transaction::new(
                    TxnId::new(PeerId::new(&publisher), epoch_base * 1_000_000 + i),
                    Epoch::new(1),
                    vec![Update::insert("R", tuple![i as i64, 0])],
                )
            })
            .collect::<Vec<_>>()
            .chunks(100)
            .map(|c| c.to_vec())
            .collect()
    };

    let (mut total_tuples, mut total_secs) = (0f64, 0f64);
    let (mut total_pages, mut total_unavail, mut total_round_trips) = (0u64, 0u64, 0u64);
    for (li, &limit) in limits.iter().enumerate() {
        // Loopback mode spins a fresh server per row; connect mode
        // reuses the external peer (epochs advance past its history).
        let local = if opts.connect.is_none() {
            Some(
                PeerServer::bind(
                    "127.0.0.1:0",
                    Arc::new(orchestra_store::InMemoryStore::new()),
                )
                .expect("bind loopback"),
            )
        } else {
            None
        };
        let addr = match (&opts.connect, &local) {
            (Some(addr), _) => addr.clone(),
            (None, Some(server)) => server.local_addr().to_string(),
            _ => unreachable!(),
        };
        let remote =
            RemoteStore::connect_with(addr.as_str(), client_opts).expect("connect to archive");
        // One probe serves both the epoch base and the scan start.
        let (_, latest, _, _) = remote.probe().expect("probe archive");
        let epoch_base = latest.map_or(0, |e| e.value());
        let batches = make_txns(epoch_base + li as u64);
        let scan_from = latest.unwrap_or_else(Epoch::zero);
        let (_, t_pub) = timed(|| {
            for (i, batch) in batches.into_iter().enumerate() {
                remote
                    .publish(Epoch::new(epoch_base + i as u64 + 1), batch)
                    .expect("publish over tcp");
            }
        });
        let before_rt = remote.net_stats().round_trips;
        let ((reachable, pages), t_scan) = timed(|| {
            let (mut ok, mut pages) = (0u64, 0u64);
            for page in orchestra_store::pages(&remote, FetchCursor::after_epoch(scan_from), limit)
            {
                let page = page.expect("paged scan over tcp");
                ok += page.txns.len() as u64;
                pages += 1;
            }
            (ok, pages)
        });
        assert_eq!(reachable, n_txns, "every published txn scanned back");
        let round_trips = remote.net_stats().round_trips - before_rt;
        let secs = t_scan.as_secs_f64();
        let tps = reachable as f64 / secs.max(1e-9);
        total_tuples += reachable as f64;
        total_secs += secs;
        total_pages += pages;
        total_round_trips += remote.net_stats().round_trips;
        let mode = if opts.connect.is_some() {
            "remote"
        } else {
            "loopback"
        };
        report.row([
            ("mode", Json::from(mode)),
            ("txns", Json::from(n_txns)),
            ("page_limit", Json::from(limit)),
            ("publish_ms", Json::Num(t_pub.as_secs_f64() * 1e3)),
            ("scan_ms", Json::Num(secs * 1e3)),
            ("pages", Json::from(pages)),
            ("round_trips", Json::from(round_trips)),
            ("tuples_per_sec", Json::Num(tps)),
        ]);
        println!(
            "{:>10} {:>7} {:>6} {:>12} {:>10} {:>7} {:>11} {:>12.0}",
            mode,
            n_txns,
            limit,
            ms(t_pub),
            ms(t_scan),
            pages,
            round_trips,
            tps
        );
        if let Some(server) = local {
            server.shutdown();
        }
    }

    // Churn over the wire (loopback only: it needs the server-side churn
    // handle): a replicated backend with a third of its nodes down still
    // serves pages, reporting the unreachable positions remotely.
    if opts.connect.is_none() {
        let dht = Arc::new(ReplicatedStore::new(64, 1).expect("ring"));
        dht.publish(
            Epoch::new(1),
            (0..n_txns)
                .map(|i| {
                    Transaction::new(
                        TxnId::new(PeerId::new("churn"), i),
                        Epoch::new(1),
                        vec![Update::insert("R", tuple![i as i64, 0])],
                    )
                })
                .collect(),
        )
        .expect("seed churn archive");
        for node in 0..(64 / 3) {
            dht.take_node_down((node * 7) % 64);
        }
        let server = PeerServer::bind("127.0.0.1:0", dht).expect("bind churn server");
        let remote = RemoteStore::connect_with(server.local_addr(), client_opts).expect("connect");
        let ((reachable, unavailable, pages), t_scan) = timed(|| {
            let (mut ok, mut lost, mut pages) = (0u64, 0u64, 0u64);
            for page in
                orchestra_store::pages(&remote, FetchCursor::after_epoch(Epoch::zero()), 256)
            {
                let page = page.expect("churn scan over tcp");
                ok += page.txns.len() as u64;
                lost += page.unavailable.len() as u64;
                pages += 1;
            }
            (ok, lost, pages)
        });
        assert_eq!(reachable + unavailable, n_txns);
        assert!(unavailable > 0, "churn must produce wire-visible gaps");
        let secs = t_scan.as_secs_f64();
        total_pages += pages;
        total_unavail += unavailable;
        total_round_trips += remote.net_stats().round_trips;
        report.row([
            ("mode", Json::from("loopback-churn")),
            ("txns", Json::from(n_txns)),
            ("page_limit", Json::from(256u64)),
            ("reachable", Json::from(reachable)),
            ("unavailable", Json::from(unavailable)),
            ("pages", Json::from(pages)),
            (
                "tuples_per_sec",
                Json::Num(reachable as f64 / secs.max(1e-9)),
            ),
        ]);
        println!(
            "{:>10} {:>7} {:>6} {:>12} {:>10} {:>7} {:>11} {:>12.0}  ({} unavailable over the wire)",
            "churn",
            n_txns,
            256,
            "-",
            ms(t_scan),
            pages,
            remote.net_stats().round_trips,
            reachable as f64 / secs.max(1e-9),
            unavailable
        );
        server.shutdown();

        // Dead endpoint: every transport failure maps to the
        // `Unavailable` error the reconcile loop absorbs.
        let dead = PeerServer::bind(
            "127.0.0.1:0",
            Arc::new(orchestra_store::InMemoryStore::new()),
        )
        .expect("bind");
        let dead_addr = dead.local_addr();
        dead.shutdown();
        let fast = RemoteOptions {
            connect_timeout: std::time::Duration::from_millis(200),
            retries: 1,
            ..RemoteOptions::default()
        };
        let remote = RemoteStore::lazy_with(dead_addr, fast).expect("lazy attach");
        let mut unavailable_mapped = 0u64;
        for _ in 0..3 {
            match remote.fetch_page(&FetchCursor::after_epoch(Epoch::zero()), 8) {
                Err(orchestra_store::StoreError::Unavailable { .. }) => unavailable_mapped += 1,
                other => panic!("dead endpoint must map to Unavailable, got {other:?}"),
            }
        }
        assert_eq!(remote.net_stats().unavailable_mapped, unavailable_mapped);
        report.summary_extra("unavailable_mapped", unavailable_mapped);
        println!(
            "  dead endpoint: {unavailable_mapped}/3 calls mapped to StoreError::Unavailable\n"
        );
    } else {
        report.summary_extra("unavailable_mapped", 0u64);
        println!();
    }

    report.tuples_per_sec = total_tuples / total_secs.max(1e-9);
    report.summary_extra("store_pages", total_pages);
    report.summary_extra("store_unavailable", total_unavail);
    report.summary_extra("round_trips", total_round_trips);
    report.summary_extra("obs", orchestra_bench::json::obs_block());
    opts.emit(&report);
    report
}

/// Cumulative `engine.round.{plan,join,merge}_micros` histogram sums
/// from the process-global obs registry (zeros when obs is compiled
/// off). Callers diff two readings to attribute wall-clock to phases.
fn round_phase_micros() -> [u64; 3] {
    let snap = orchestra_obs::snapshot_filtered("engine.round.");
    let mut out = [0u64; 3];
    for h in &snap.histograms {
        let slot = match h.name.as_str() {
            "engine.round.plan_micros" => 0,
            "engine.round.join_micros" => 1,
            "engine.round.merge_micros" => 2,
            _ => continue,
        };
        out[slot] = h.sum;
    }
    out
}

/// E11 — shard-parallel thread scaling: propagate two workloads at
/// 1/2/4/8 evaluation threads over hash-partitioned relations:
///
/// * `tc` — transitive closure of a dense random graph. Recursion- and
///   provenance-heavy: every firing is a distinct derivation record, so
///   the deterministic sequential merge is a large fraction of the round
///   and scaling is modest by design (the price of byte-identical
///   provenance at any thread count).
/// * `tri` — the triangle query over a denser graph. Probe-bound: the
///   join phase scans two-hop candidates in parallel while firings stay
///   rare, so scaling tracks the host's cores.
///
/// The same code path runs at every thread count — `threads = 1` is the
/// inline arm, not a second engine — so the experiment also pins **stats
/// parity**: firings, derivations, rounds, probes, and the fixpoint are
/// identical at any thread count; only wall-clock differs. Speedups are
/// naturally ceilinged by `host_parallelism` (recorded in the summary).
///
/// Each row also carries the per-phase wall-clock split from the obs
/// round histograms (`engine.round.{plan,join,merge}_micros`) — in
/// particular `merge_frac`, the merge phase's share of the round. Before
/// the partitioned merge this fraction was the Amdahl ceiling on `tc`;
/// now it should shrink as threads go up.
///
/// `ORCHESTRA_EVAL_THREADS` is honored as an explicit override: set it
/// to a comma-separated list (e.g. `1,2,8`) to pick the exact thread
/// counts the sweep runs — CI uses this to smoke-test stats parity.
pub fn e11_threads(opts: &Opts) -> BenchReport {
    println!("── E11: shard-parallel propagate, thread scaling ──");
    println!(
        "{:<9} {:<8} {:>7} {:>9} {:>13} {:>12} {:>9} {:>7} {:>9}",
        "workload",
        "threads",
        "shards",
        "tuples",
        "propagate ms",
        "tuples/s",
        "speedup",
        "merge%",
        "stats=1t"
    );
    let mut report = BenchReport::new("e11", &opts.variant, opts.smoke);
    let (shards, iters) = if opts.smoke {
        (8usize, 1usize)
    } else {
        (16, 5)
    };
    let thread_counts: Vec<usize> = std::env::var("ORCHESTRA_EVAL_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let thread_counts: &[usize] = &thread_counts;
    let workloads: Vec<(&'static str, _, _, Vec<_>)> = {
        let (tc_db, tc_rules, tc_edges) = if opts.smoke {
            tc_parts(64, 320, 11)
        } else {
            tc_parts(240, 1500, 11)
        };
        let (tri_db, tri_rules, tri_edges) = if opts.smoke {
            triangle_parts(120, 1800, 13)
        } else {
            triangle_parts(640, 14000, 13)
        };
        vec![
            ("tc", tc_db, tc_rules, tc_edges),
            ("tri", tri_db, tri_rules, tri_edges),
        ]
    };
    let mut best_tps = 0f64;
    let mut parity = true;
    // threads → best speedup across workloads.
    let mut speedups: std::collections::BTreeMap<usize, f64> = Default::default();
    for (name, db, rules, edges) in &workloads {
        let mut baseline: Option<(f64, EngineStats, usize)> = None;
        for &threads in thread_counts {
            let eval = EvalOptions {
                threads,
                shards,
                ..EvalOptions::default()
            };
            // Best of `iters` fresh runs (results are deterministic; only
            // wall-clock is noisy).
            let mut best = std::time::Duration::MAX;
            let mut total = 0usize;
            let mut stats = EngineStats::default();
            let phases_before = round_phase_micros();
            for _ in 0..iters {
                let mut engine =
                    Engine::with_options(db.clone(), rules.clone(), true, eval).unwrap();
                for t in edges {
                    engine.insert_base("edge", t.clone()).unwrap();
                }
                let (_, dt) = timed(|| engine.propagate().unwrap());
                best = best.min(dt);
                total = engine.total_tuples();
                // Count alive tuples through the borrowing per-shard
                // scan — the read path reconcile/bench consumers use.
                let scanned: usize = ["edge", "path", "tri"]
                    .iter()
                    .map(|r| engine.scan(r).count())
                    .sum();
                assert_eq!(scanned, total);
                stats = engine.stats();
            }
            let phases_after = round_phase_micros();
            // The obs registry is process-global and cumulative, so the
            // phase split is the delta across this cell's `iters` runs
            // (averaged back to one propagate).
            let [plan_ms, join_ms, merge_ms] = std::array::from_fn(|i| {
                phases_after[i].saturating_sub(phases_before[i]) as f64 / 1e3 / iters as f64
            });
            let phase_total = plan_ms + join_ms + merge_ms;
            let merge_frac = if phase_total > 0.0 {
                merge_ms / phase_total
            } else {
                0.0
            };
            let secs = best.as_secs_f64().max(1e-9);
            let tps = total as f64 / secs;
            let (t1_tps, stats_match) = match &baseline {
                None => {
                    baseline = Some((tps, stats, total));
                    (tps, true)
                }
                Some((t1, s1, tot1)) => {
                    assert_eq!(total, *tot1, "fixpoint differs across thread counts");
                    (*t1, stats == *s1)
                }
            };
            parity &= stats_match;
            let speedup = tps / t1_tps.max(1e-9);
            let entry = speedups.entry(threads).or_insert(0.0);
            *entry = entry.max(speedup);
            best_tps = best_tps.max(tps);
            println!(
                "{:<9} {:<8} {:>7} {:>9} {:>13} {:>12.0} {:>9.2} {:>6.0}% {:>9}",
                name,
                threads,
                shards,
                total,
                ms(best),
                tps,
                speedup,
                merge_frac * 100.0,
                stats_match
            );
            report.row([
                ("workload", Json::from(*name)),
                ("threads", Json::from(threads)),
                ("shards", Json::from(shards)),
                ("tuples", Json::from(total)),
                ("propagate_ms", Json::from(best.as_secs_f64() * 1e3)),
                ("tuples_per_sec", Json::from(tps)),
                ("speedup_vs_1t", Json::from(speedup)),
                ("stats_match_1t", Json::from(stats_match)),
                ("plan_ms", Json::from(plan_ms)),
                ("join_ms", Json::from(join_ms)),
                ("merge_ms", Json::from(merge_ms)),
                ("merge_frac", Json::from(merge_frac)),
                ("firings", Json::from(stats.firings)),
                ("rounds", Json::from(stats.rounds)),
            ]);
            report.rounds = report.rounds.max(stats.rounds);
            report.firings = report.firings.max(stats.firings);
        }
    }
    report.tuples_per_sec = best_tps;
    report.summary_extra("shards", shards);
    report.summary_extra("stats_parity", parity);
    for (t, s) in &speedups {
        match t {
            2 => report.summary_extra("speedup_2t", *s),
            4 => report.summary_extra("speedup_4t", *s),
            8 => report.summary_extra("speedup_8t", *s),
            _ => {}
        }
    }
    report.summary_extra(
        "host_parallelism",
        std::thread::available_parallelism().map_or(1usize, |n| n.get()),
    );
    report.summary_extra("store_pages", 0u64);
    report.summary_extra("store_unavailable", 0u64);
    opts.emit(&report);
    println!();
    report
}
