//! E13 — the fault-injection cluster: gossip, corrupt, heal, converge.
//!
//! One process, many [`MeshNode`]s over real loopback sockets (the
//! failpoint registry is process-global, so unlike E12 the whole
//! cluster lives in a single process and every node shares the
//! deterministic fault schedule). The scenario:
//!
//! 1. **publish** — every peer publishes its transactions, faults off,
//! 2. **gossip under fire** — a scoped failpoint config injects
//!    exchange aborts, wire bit-flips on both client and server sends,
//!    abandoned responses, torn WAL appends, and fsync failures while
//!    the mesh gossips; every injection is counted,
//! 3. **converge clean** — faults off, rounds run until every archive
//!    holds every transaction,
//! 4. **bit rot + heal** — a byte is flipped in a sealed WAL segment of
//!    every node but one; `scrub()` quarantines the damaged positions,
//!    and gossip rounds repair them from intact neighbors with
//!    checksum-verified frames (re-indexed, never re-applied),
//! 5. **churn** — one node is shut down; survivors trip their circuit
//!    breakers against the dead address (fast-fails counted), drop it
//!    from the membership, publish more, and converge through a wave of
//!    mid-frame connection cuts; a cold replacement then joins on a
//!    fresh port/dir and pulls the full history out of the mesh,
//! 6. **audit** — every node reconciles its hosted peer repeatedly;
//!    the accepted-transaction sets are checked for duplicates.
//!
//! `BENCH_e13.json` records `faults_injected` (> 0), `quarantined` ==
//! `healed`, `duplicate_applies` == 0, and `converged` == true: the
//! cluster absorbs deterministic corruption at every layer and ends
//! byte-identical, with no transaction applied twice to any peer
//! instance.

use crate::json::{BenchReport, Json};
use orchestra_core::Cdss;
use orchestra_datalog::{Atom, Tgd};
use orchestra_mesh::{InterestMode, MeshNode, MeshOptions};
use orchestra_net::RemoteOptions;
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_store::durable::segment::{list_segments, segment_file_name};
use orchestra_store::{DurableOptions, DurableStore, UpdateStore};
use orchestra_updates::{PeerId, TxnId, Update};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows per published transaction.
const ROWS_PER_TXN: u64 = 4;

/// Failpoint schedule for the gossip-under-fire phase: faults at every
/// injection layer the framework wires — mesh round, client wire,
/// server wire, WAL append, WAL fsync.
const FIRE_SPEC: &str = "mesh.exchange=err@0.12,net.client.send=flip@0.05,\
                         net.client.recv=err@0.04,net.server.send=flip@0.04,\
                         store.wal.append=torn@0.04,store.wal.fsync=err@0.04";

/// Failpoint schedule for the churn phase: mid-frame connection cuts
/// while survivors gossip around the hole.
const CUT_SPEC: &str = "net.client.send=cut@0.25";

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Mesh nodes (one hosted peer each).
    pub nodes: usize,
    /// Transactions each peer publishes in the initial phase.
    pub publish_txns: u64,
    /// Transactions each survivor publishes during churn.
    pub churn_txns: u64,
    /// Gossip sweeps run with the fire-phase failpoints active.
    pub fire_sweeps: usize,
    /// Sweep cap per convergence/heal phase.
    pub round_cap: usize,
    /// Deterministic seed: failpoint PRNG + mesh neighbor selection.
    pub seed: u64,
}

impl FaultConfig {
    /// Full scenario: 5 nodes; smoke: 3 nodes, smaller workload.
    pub fn for_smoke(smoke: bool) -> FaultConfig {
        FaultConfig {
            nodes: if smoke { 3 } else { 5 },
            publish_txns: if smoke { 5 } else { 16 },
            churn_txns: if smoke { 3 } else { 6 },
            fire_sweeps: if smoke { 5 } else { 10 },
            round_cap: 60,
            seed: 1307,
        }
    }
}

fn peer_name(n: usize) -> String {
    format!("f{n:02}")
}

fn schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts_keyed(
                "S",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

fn copy_r(src: &str, dst: &str) -> Tgd {
    Tgd::new(
        format!("M{src}->{dst}/R"),
        vec![Atom::vars(format!("{src}.R"), &["k", "v"])],
        vec![Atom::vars(format!("{dst}.R"), &["k", "v"])],
    )
    .unwrap()
}

/// Global mapping picture: all peers, `R` copied along the peer chain.
fn cluster_builder(nodes: usize) -> orchestra_core::CdssBuilder {
    let mut b = Cdss::builder();
    for n in 0..nodes {
        b = b.peer(peer_name(n), schema(), TrustPolicy::open(1));
    }
    for n in 1..nodes {
        b = b.mapping(copy_r(&peer_name(n - 1), &peer_name(n)));
    }
    b
}

/// Hardened transport, deliberately twitchy so the injected faults
/// exercise it: retries with millisecond backoff, a hair-trigger
/// breaker with a short cooldown.
fn remote_opts() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_millis(300),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        pool_capacity: 2,
        retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(16),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(150),
    }
}

struct FaultNode {
    node: MeshNode,
    peer: PeerId,
    durable: Arc<DurableStore>,
    dir: std::path::PathBuf,
    pub_seq: u64,
    /// Every transaction id this node's peer instance ever accepted —
    /// the zero-duplicate-applies ledger.
    applied: BTreeSet<TxnId>,
    duplicate_applies: u64,
}

/// Start mesh node `n` on a fresh durable archive (tiny segments, so
/// even the smoke run seals several — the bit-rot phase needs sealed
/// segments to chew on).
fn start_node(n: usize, total: usize, cfg: &FaultConfig, tag: &str) -> FaultNode {
    let name = peer_name(n);
    let dir =
        std::env::temp_dir().join(format!("orchestra-e13-{}-{tag}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = Arc::new(
        DurableStore::open_with(
            &dir,
            DurableOptions {
                segment_max_bytes: 600,
                ..DurableOptions::default()
            },
        )
        .expect("open durable archive"),
    );
    let shared: Arc<dyn UpdateStore> = Arc::clone(&durable) as Arc<dyn UpdateStore>;
    let cdss = cluster_builder(total)
        .build_with_shared(shared)
        .expect("build cdss");
    let node = MeshNode::start_hosting(
        format!("{name}{tag}"),
        cdss,
        vec![PeerId::new(name.clone())],
        "127.0.0.1:0",
        MeshOptions {
            // Fanout covers the whole clique so every neighbor —
            // including a dead one — is contacted every round.
            fanout: total,
            page_limit: 8,
            seed: cfg.seed,
            interest: InterestMode::Everything,
            remote: remote_opts(),
            ..MeshOptions::default()
        },
    )
    .expect("start mesh node");
    FaultNode {
        node,
        peer: PeerId::new(name),
        durable,
        dir,
        pub_seq: 0,
        applied: BTreeSet::new(),
        duplicate_applies: 0,
    }
}

fn publish(fnode: &mut FaultNode, txns: u64) {
    for t in 0..txns {
        let rel = if t % 2 == 0 { "R" } else { "S" };
        let base = (fnode.pub_seq * ROWS_PER_TXN) as i64;
        fnode.pub_seq += 1;
        let updates: Vec<Update> = (0..ROWS_PER_TXN)
            .map(|j| Update::insert(rel, tuple![base + j as i64, fnode.pub_seq as i64]))
            .collect();
        fnode
            .node
            .cdss_mut()
            .publish_transaction(&fnode.peer, updates)
            .expect("publish");
    }
}

/// One gossip sweep across the cluster. Locally-surfacing injected
/// faults (torn appends, failed fsyncs during absorb) abort a node's
/// round; they are counted, and the next sweep retries — the archive's
/// append rollback + first-location dedup make the retry safe.
fn sweep(nodes: &mut [FaultNode]) -> (u64, u64, u64) {
    let (mut absorbed, mut failures, mut local_aborts) = (0u64, 0u64, 0u64);
    for fnode in nodes.iter_mut() {
        match fnode.node.run_round() {
            Ok(r) => {
                absorbed += r.absorbed;
                failures += r.failures as u64;
            }
            Err(_) => local_aborts += 1,
        }
    }
    (absorbed, failures, local_aborts)
}

/// Sweep until every archive holds `expected` transactions (len counts
/// quarantined positions, so this is also heal-safe) or the cap hits.
fn converge(nodes: &mut [FaultNode], expected: u64, cap: usize) -> (usize, bool) {
    for round in 0..cap {
        if nodes
            .iter()
            .all(|f| f.node.archive().len() as u64 == expected)
        {
            return (round, true);
        }
        if std::env::var_os("E13_DEBUG").is_some() {
            for f in nodes.iter() {
                eprintln!(
                    "e13 debug: round {round} {} len={} (want {expected}) q={} cursors={:?}",
                    f.node.name(),
                    f.node.archive().len(),
                    f.node.archive().quarantined().len(),
                    f.node
                        .neighbors()
                        .iter()
                        .map(|a| (
                            a.clone(),
                            f.node.neighbor_cursor(a).is_some(),
                            f.node.neighbor_error(a).is_some()
                        ))
                        .collect::<Vec<_>>(),
                );
            }
        }
        sweep(nodes);
    }
    let ok = nodes
        .iter()
        .all(|f| f.node.archive().len() as u64 == expected);
    (cap, ok)
}

/// Reconcile every node's hosted peer `passes` times, extending each
/// node's accepted-id ledger and counting re-applies (must stay 0).
fn audit(nodes: &mut [FaultNode], passes: usize) {
    for _ in 0..passes {
        for fnode in nodes.iter_mut() {
            let report = fnode
                .node
                .cdss_mut()
                .reconcile(&fnode.peer)
                .expect("reconcile");
            for id in &report.outcome.accepted {
                if !fnode.applied.insert(id.clone()) {
                    fnode.duplicate_applies += 1;
                }
            }
        }
    }
}

/// Flip one byte in the middle of the node's first sealed WAL segment.
fn bit_rot(fnode: &FaultNode) {
    let mut seqs = list_segments(&fnode.dir).expect("list segments");
    seqs.sort_unstable();
    assert!(
        seqs.len() >= 2,
        "{}: need a sealed segment to corrupt ({} present)",
        fnode.node.name(),
        seqs.len()
    );
    let path = fnode.dir.join(segment_file_name(seqs[0]));
    let mut bytes = std::fs::read(&path).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, bytes).expect("rot segment");
}

/// Run E13 and return the report (written to `BENCH_e13.json` by the
/// harness when `--json-dir` is set).
pub fn e13_fault_cluster(smoke: bool, variant: &str) -> BenchReport {
    let cfg = FaultConfig::for_smoke(smoke);
    let mut report = BenchReport::new("e13", variant, smoke);
    let started = Instant::now();

    println!(
        "\nE13 — fault injection + self-healing ({} nodes, seed {})",
        cfg.nodes, cfg.seed
    );

    let mut nodes: Vec<FaultNode> = (0..cfg.nodes)
        .map(|n| start_node(n, cfg.nodes, &cfg, ""))
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|f| f.node.addr().to_string()).collect();
    for (i, fnode) in nodes.iter_mut().enumerate() {
        for (j, addr) in addrs.iter().enumerate() {
            if i != j {
                fnode.node.join(addr.clone()).expect("join");
            }
        }
    }

    // 1. Publish, faults off — publishing through the CDSS under write
    // faults would burn sequence numbers on failure (the archive write
    // happens after local ingest), so injected WAL faults target the
    // gossip absorb path, which retries safely.
    for fnode in nodes.iter_mut() {
        publish(fnode, cfg.publish_txns);
    }
    let initial_total = cfg.nodes as u64 * cfg.publish_txns;

    // 2. Gossip under fire.
    let mut local_aborts = 0u64;
    let mut fire_failures = 0u64;
    let fire_injected;
    {
        let _guard = orchestra_fault::scoped(FIRE_SPEC, cfg.seed);
        for _ in 0..cfg.fire_sweeps {
            let (_, failures, aborts) = sweep(&mut nodes);
            fire_failures += failures;
            local_aborts += aborts;
        }
        fire_injected = orchestra_fault::injected_total();
        for site in orchestra_fault::report() {
            println!(
                "  injected {:>3}× {} ({:?})",
                site.fired, site.site, site.action
            );
        }
    }
    println!(
        "  fire phase: {} faults injected, {} neighbor failures, {} local aborts",
        fire_injected, fire_failures, local_aborts
    );

    // 3. Converge clean (breaker cooldowns from the fire phase expire
    // in well under a sweep of real socket work).
    std::thread::sleep(Duration::from_millis(200));
    let (clean_rounds, clean_ok) = converge(&mut nodes, initial_total, cfg.round_cap);
    println!("  converged clean in {clean_rounds} rounds (all {initial_total} txns everywhere)");
    assert!(clean_ok, "cluster failed to converge after the fire phase");
    audit(&mut nodes, 1);

    // 4. Bit rot + scrub + heal: every node but f00 loses part of a
    // sealed segment; f00 stays intact so every position has a clean
    // source. Quarantined positions gossip as gaps and are re-fetched.
    let mut quarantined_total = 0u64;
    for fnode in nodes.iter().skip(1) {
        bit_rot(fnode);
        let scrub = fnode.durable.scrub().expect("scrub");
        quarantined_total += scrub.quarantined as u64;
    }
    assert!(quarantined_total > 0, "bit rot produced no quarantine");
    let healed_before: u64 = nodes.iter().map(|f| f.node.stats().healed).sum();
    let mut heal_rounds = 0usize;
    while nodes
        .iter()
        .any(|f| !f.node.archive().quarantined().is_empty())
    {
        assert!(heal_rounds < cfg.round_cap, "heal did not complete");
        sweep(&mut nodes);
        heal_rounds += 1;
    }
    let healed_total: u64 =
        nodes.iter().map(|f| f.node.stats().healed).sum::<u64>() - healed_before;
    println!(
        "  bit rot: {quarantined_total} positions quarantined, {healed_total} healed from the mesh in {heal_rounds} rounds"
    );
    assert_eq!(
        healed_total, quarantined_total,
        "every quarantined position must heal"
    );

    // 5. Churn: the last node dies. Survivors trip breakers against the
    // dead address, drop it, publish more, and converge through a wave
    // of injected connection cuts; a cold replacement then rejoins.
    let dead = nodes.pop().expect("cluster has nodes");
    let dead_addr = dead.node.addr().to_string();
    let dead_row = node_row(&dead, started);
    let dead_dir = dead.dir.clone();
    drop(dead.node.shutdown());
    drop(dead.durable);

    for _ in 0..3 {
        sweep(&mut nodes); // dead neighbor still in the membership
    }
    let breaker_opened: u64 = nodes
        .iter()
        .map(|f| f.node.net_stats().breaker_opened)
        .sum();
    let breaker_fast_fails: u64 = nodes
        .iter()
        .map(|f| f.node.net_stats().breaker_fast_fails)
        .sum();
    for fnode in nodes.iter_mut() {
        fnode.node.leave(&dead_addr);
    }
    for fnode in nodes.iter_mut() {
        publish(fnode, cfg.churn_txns);
    }
    let cut_injected;
    {
        let _guard = orchestra_fault::scoped(CUT_SPEC, cfg.seed + 1);
        for _ in 0..3 {
            sweep(&mut nodes);
        }
        cut_injected = orchestra_fault::injected_total();
    }
    std::thread::sleep(Duration::from_millis(200));
    let final_total = initial_total + (cfg.nodes as u64 - 1) * cfg.churn_txns;
    let (churn_rounds, churn_ok) = converge(&mut nodes, final_total, cfg.round_cap);
    assert!(churn_ok, "survivors failed to converge around the hole");

    let mut replacement = start_node(cfg.nodes - 1, cfg.nodes, &cfg, "r");
    let _ = std::fs::remove_dir_all(&dead_dir);
    for addr in nodes.iter().map(|f| f.node.addr().to_string()) {
        replacement.node.join(addr).expect("replacement joins");
    }
    let replacement_addr = replacement.node.addr().to_string();
    for fnode in nodes.iter_mut() {
        fnode.node.join(replacement_addr.clone()).expect("rejoin");
    }
    nodes.push(replacement);
    let (rejoin_rounds, rejoin_ok) = converge(&mut nodes, final_total, cfg.round_cap);
    println!(
        "  churn: breakers opened {breaker_opened}×, fast-failed {breaker_fast_fails}×; \
         {cut_injected} cuts injected; survivors converged in {churn_rounds} rounds, \
         cold replacement in {rejoin_rounds}"
    );
    assert!(rejoin_ok, "replacement failed to pull the full history");

    // 6. Audit: repeated reconciles accept nothing twice.
    audit(&mut nodes, 2);
    let duplicate_applies: u64 = nodes.iter().map(|f| f.duplicate_applies).sum();
    let converged = nodes
        .iter()
        .all(|f| f.node.archive().len() as u64 == final_total);
    println!(
        "  audit: {} nodes at {final_total} txns, {duplicate_applies} duplicate applies",
        nodes.len()
    );

    let faults_injected = fire_injected + cut_injected;
    let backoff_waits: u64 = nodes.iter().map(|f| f.node.net_stats().backoff_waits).sum();
    let served_corrupt: u64 = nodes
        .iter()
        .map(|f| f.node.server_stats().corrupt_frames)
        .sum();

    report.row(dead_row);
    for fnode in &nodes {
        report.row(node_row(fnode, started));
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    report.tuples_per_sec = final_total as f64 * ROWS_PER_TXN as f64 / secs;
    report.rounds =
        (cfg.fire_sweeps + clean_rounds + heal_rounds + churn_rounds + rejoin_rounds) as u64;
    report.summary_extra("nodes", cfg.nodes);
    report.summary_extra("failpoint_seed", cfg.seed);
    report.summary_extra("faults_injected", faults_injected);
    report.summary_extra("fire_local_aborts", local_aborts);
    report.summary_extra("fire_neighbor_failures", fire_failures);
    report.summary_extra("quarantined", quarantined_total);
    report.summary_extra("healed", healed_total);
    report.summary_extra("heal_rounds", heal_rounds);
    report.summary_extra("duplicate_applies", duplicate_applies);
    report.summary_extra("converged", converged);
    report.summary_extra("published_txns", final_total);
    report.summary_extra("breaker_opened", breaker_opened);
    report.summary_extra("breaker_fast_fails", breaker_fast_fails);
    report.summary_extra("backoff_waits", backoff_waits);
    report.summary_extra("served_corrupt_frames", served_corrupt);
    let total_pulls: u64 = nodes.iter().map(|f| f.node.stats().pulls).sum();
    report.summary_extra("store_pages", total_pulls);
    // Quarantined positions were wire-visible gaps until healed.
    report.summary_extra("store_unavailable", quarantined_total);
    report.summary_extra("converge_rounds_clean", clean_rounds);
    report.summary_extra("converge_rounds_churn", churn_rounds);
    report.summary_extra("converge_rounds_rejoin", rejoin_rounds);

    for fnode in nodes.drain(..) {
        let dir = fnode.dir.clone();
        drop(fnode.node.shutdown());
        drop(fnode.durable);
        let _ = std::fs::remove_dir_all(dir);
    }

    report
}

/// One `rows[]` entry for a node's final counters.
fn node_row(fnode: &FaultNode, started: Instant) -> Vec<(&'static str, Json)> {
    let stats = fnode.node.stats();
    let net = fnode.node.net_stats();
    let served = fnode.node.server_stats();
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    vec![
        ("node", Json::from(fnode.node.name().to_string())),
        ("seed", Json::from(fnode.node.seed())),
        ("len", Json::from(fnode.node.archive().len())),
        (
            "tuples_per_sec",
            Json::Num(fnode.node.archive().len() as f64 * ROWS_PER_TXN as f64 / secs),
        ),
        ("absorbed", Json::from(stats.txns_absorbed)),
        ("duplicates", Json::from(stats.duplicates)),
        ("healed", Json::from(stats.healed)),
        ("pulls", Json::from(stats.pulls)),
        ("neighbor_failures", Json::from(stats.neighbor_failures)),
        ("backoff_waits", Json::from(net.backoff_waits)),
        ("breaker_opened", Json::from(net.breaker_opened)),
        ("breaker_fast_fails", Json::from(net.breaker_fast_fails)),
        ("served_corrupt_frames", Json::from(served.corrupt_frames)),
        ("served_timed_out_conns", Json::from(served.timed_out_conns)),
        ("duplicate_applies", Json::from(fnode.duplicate_applies)),
    ]
}
