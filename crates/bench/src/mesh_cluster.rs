//! E12 — the mesh cluster scenario: epidemic anti-entropy across real OS
//! processes.
//!
//! The parent (`e12_mesh_cluster`) spawns `children` copies of the
//! `experiments` binary in a hidden child mode (`e12_child_main`), each
//! hosting several [`MeshNode`]s — one simulated peer per node — and
//! drives them through a scripted scenario over a stdin/stdout line
//! protocol:
//!
//! 1. **publish + converge** — every peer publishes, gossip rounds run
//!    until every node's digest matches the expected per-relation counts
//!    (restricted to its interest set),
//! 2. **compaction** — each process's durable archival node folds its
//!    WAL into a snapshot mid-run,
//! 3. **churn** — one child process is killed outright; survivors keep
//!    publishing and converging around the hole (dead-neighbor failures
//!    are counted, frozen cursors and all),
//! 4. **rejoin** — a fresh process takes the dead one's place on new
//!    ports; everyone re-wires membership and the cold rejoiner pulls
//!    its own lost history back out of the mesh.
//!
//! Peers are arranged in `nodes_per_child` mapping groups, each group a
//! chain of `R`-copy mappings across the processes, so interest-based
//! nodes replicate only their chain prefix (plus their private `S`)
//! while one archival node per process replicates everything. The
//! emitted `BENCH_e12.json` records convergence latency per phase and
//! bytes shipped per node — interest-based peers must ship strictly
//! less than full-replication peers.

use crate::json::{BenchReport, Json};
use orchestra_core::Cdss;
use orchestra_datalog::{Atom, Tgd};
use orchestra_mesh::{InterestMode, MeshNode, MeshOptions};
use orchestra_net::{RemoteOptions, RemoteStore};
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_store::{DurableStore, UpdateStore};
use orchestra_updates::{PeerId, Update};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows per published transaction (bulk so payload bytes dominate the
/// digest chatter in the shipped-bytes comparison).
const ROWS_PER_TXN: u64 = 48;

/// Cluster geometry and workload knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Child OS processes.
    pub children: usize,
    /// Mesh nodes (= simulated peers) per child.
    pub nodes_per_child: usize,
    /// Transactions each peer publishes per publish phase (alternating
    /// its `R` and `S`).
    pub publish_txns: u64,
    /// Gossip round sweeps allowed per convergence phase.
    pub round_cap: usize,
    /// Scan positions per `PullPages` request.
    pub page_limit: u64,
    /// Deterministic base seed for neighbor selection.
    pub seed: u64,
}

impl ClusterConfig {
    /// The scenario sizes: 4 processes × 4 nodes = 16 simulated peers
    /// (smoke: 4 × 2 = 8, same shape, smaller workload).
    pub fn for_smoke(smoke: bool) -> ClusterConfig {
        ClusterConfig {
            children: 4,
            nodes_per_child: if smoke { 2 } else { 4 },
            publish_txns: if smoke { 4 } else { 6 },
            round_cap: 40,
            page_limit: 16,
            seed: 42,
        }
    }

    fn total_nodes(&self) -> usize {
        self.children * self.nodes_per_child
    }
}

/// Peer `n`'s name — also its mesh node name.
fn peer_name(n: usize) -> String {
    format!("p{n:02}")
}

/// Two keyed relations per peer; mappings only ever read `R`, so `S`
/// stays with its publisher (and the archival nodes) under derived
/// interest.
fn schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts_keyed(
                "S",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

fn copy_r(src: &str, dst: &str) -> Tgd {
    Tgd::new(
        format!("M{src}->{dst}/R"),
        vec![Atom::vars(format!("{src}.R"), &["k", "v"])],
        vec![Atom::vars(format!("{dst}.R"), &["k", "v"])],
    )
    .unwrap()
}

/// The global picture every participant declares: all peers, and per
/// mapping group `k` a chain of `R` copies across the processes
/// (`p[0*npc+k].R → p[1*npc+k].R → …`). Node `c*npc+k` lives on child
/// `c`, so every chain hop crosses a process boundary.
fn cluster_builder(cfg: &ClusterConfig) -> orchestra_core::CdssBuilder {
    let mut b = Cdss::builder();
    for n in 0..cfg.total_nodes() {
        b = b.peer(peer_name(n), schema(), TrustPolicy::open(1));
    }
    for k in 0..cfg.nodes_per_child {
        for c in 1..cfg.children {
            b = b.mapping(copy_r(
                &peer_name((c - 1) * cfg.nodes_per_child + k),
                &peer_name(c * cfg.nodes_per_child + k),
            ));
        }
    }
    b
}

fn cluster_remote_opts() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        pool_capacity: 2,
        retries: 0,
        // Hardened transport: short equal-jitter backoff between retries
        // (inert while `retries: 0`) and a per-endpoint circuit breaker
        // so a dead child fast-fails instead of eating a connect timeout
        // on every gossip round.
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(100),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
    }
}

// ---------------------------------------------------------------------
// Child half
// ---------------------------------------------------------------------

struct ChildNode {
    node: MeshNode,
    peer: PeerId,
    /// `Some` for the archival node: its durable store handle, kept for
    /// the mid-run compaction step.
    durable: Option<Arc<DurableStore>>,
    durable_dir: Option<std::path::PathBuf>,
    /// Monotone publish counter → unique row keys per peer.
    pub_seq: u64,
}

impl ChildNode {
    fn mode(&self) -> &'static str {
        if self.node.interest().is_empty() {
            "full"
        } else {
            "interest"
        }
    }
}

/// The hidden child mode: host `nodes_per_child` mesh nodes and obey
/// the parent's line protocol on stdin/stdout. Args (all positional):
/// `child_idx children nodes_per_child publish_txns page_limit seed`.
pub fn e12_child_main(args: &[String]) {
    let num = |i: usize| -> u64 { args[i].parse().expect("e12 child arg") };
    let child_idx = num(0) as usize;
    let cfg = ClusterConfig {
        children: num(1) as usize,
        nodes_per_child: num(2) as usize,
        publish_txns: num(3),
        round_cap: 0, // parent-side knob only
        page_limit: num(4),
        seed: num(5),
    };

    let mut nodes: Vec<ChildNode> = Vec::new();
    for k in 0..cfg.nodes_per_child {
        let global = child_idx * cfg.nodes_per_child + k;
        let name = peer_name(global);
        // One archival (full-replication, durable) node per process;
        // the rest replicate their interest closure in memory.
        let archival = k == 0;
        let opts = MeshOptions {
            fanout: 3,
            page_limit: cfg.page_limit,
            seed: cfg.seed,
            interest: if archival {
                InterestMode::Everything
            } else {
                InterestMode::Derived
            },
            remote: cluster_remote_opts(),
            ..MeshOptions::default()
        };
        let builder = cluster_builder(&cfg);
        let (cdss, durable, durable_dir) = if archival {
            let dir = std::env::temp_dir().join(format!(
                "orchestra-e12-{}-{child_idx}-{k}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(DurableStore::open(&dir).expect("open durable archive"));
            let shared: Arc<dyn UpdateStore> = Arc::clone(&store) as Arc<dyn UpdateStore>;
            (
                builder.build_with_shared(shared).expect("build cdss"),
                Some(store),
                Some(dir),
            )
        } else {
            (builder.build().expect("build cdss"), None, None)
        };
        let node = MeshNode::start_hosting(
            name.clone(),
            cdss,
            vec![PeerId::new(name.clone())],
            "127.0.0.1:0",
            opts,
        )
        .expect("start mesh node");
        nodes.push(ChildNode {
            node,
            peer: PeerId::new(name),
            durable,
            durable_dir,
            pub_seq: 0,
        });
    }

    let stdout = std::io::stdout();
    let reply = |line: String| {
        let mut out = stdout.lock();
        writeln!(out, "{line}").expect("child stdout");
        out.flush().expect("child stdout flush");
    };

    let ready: Vec<String> = nodes
        .iter()
        .map(|cn| format!("{}={}", cn.node.name(), cn.node.addr()))
        .collect();
    reply(format!("READY {}", ready.join(" ")));

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("child stdin");
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("TOPO") => {
                let members: BTreeMap<&str, &str> = parts
                    .map(|p| p.split_once('=').expect("TOPO name=addr"))
                    .collect();
                for cn in &mut nodes {
                    let own = cn.node.name().to_string();
                    let want: Vec<&str> = members
                        .iter()
                        .filter(|(name, _)| **name != own)
                        .map(|(_, addr)| *addr)
                        .collect();
                    for stale in cn.node.neighbors() {
                        if !want.contains(&stale.as_str()) {
                            cn.node.leave(&stale);
                        }
                    }
                    for addr in want {
                        cn.node.join(addr).expect("join neighbor");
                    }
                }
                reply("OK".to_string());
            }
            Some("PUBLISH") => {
                let n: u64 = parts.next().unwrap().parse().unwrap();
                let mut counts: BTreeMap<String, u64> = BTreeMap::new();
                for cn in &mut nodes {
                    for t in 0..n {
                        let rel = if t % 2 == 0 { "R" } else { "S" };
                        let base = (cn.pub_seq * ROWS_PER_TXN) as i64;
                        cn.pub_seq += 1;
                        let updates: Vec<Update> = (0..ROWS_PER_TXN)
                            .map(|j| {
                                Update::insert(rel, tuple![base + j as i64, cn.pub_seq as i64])
                            })
                            .collect();
                        cn.node
                            .cdss_mut()
                            .publish_transaction(&cn.peer, updates)
                            .expect("publish");
                        *counts
                            .entry(format!("{}.{rel}", cn.peer.name()))
                            .or_insert(0) += 1;
                    }
                }
                let body: Vec<String> =
                    counts.iter().map(|(rel, c)| format!("{rel}={c}")).collect();
                reply(format!("PUBLISHED {}", body.join(" ")));
            }
            Some("ROUND") => {
                let (mut absorbed, mut failures, mut dups) = (0u64, 0u64, 0u64);
                for cn in &mut nodes {
                    let r = cn.node.run_round().expect("gossip round");
                    absorbed += r.absorbed;
                    failures += r.failures as u64;
                    dups += r.duplicates;
                }
                reply(format!(
                    "ROUNDED absorbed={absorbed} failures={failures} dups={dups}"
                ));
            }
            Some("CHECK") => {
                let expected: Vec<(String, u64)> = parts
                    .map(|p| {
                        let (rel, c) = p.split_once('=').expect("CHECK rel=count");
                        (rel.to_string(), c.parse().unwrap())
                    })
                    .collect();
                let mut converged = 0usize;
                for cn in &nodes {
                    let digest = cn.node.archive().digest().expect("local digest");
                    let interest = cn.node.interest();
                    let mut ok = true;
                    for (rel, count) in expected
                        .iter()
                        .filter(|(rel, _)| interest.is_empty() || interest.iter().any(|r| r == rel))
                    {
                        let got = digest.relation_txns(rel);
                        if got != *count {
                            ok = false;
                            if std::env::var_os("E12_DEBUG").is_some() {
                                eprintln!(
                                    "e12 debug: {} lacks {rel}: {got}/{count}",
                                    cn.node.name()
                                );
                            }
                        }
                    }
                    converged += ok as usize;
                }
                reply(format!("CONV {converged}/{}", nodes.len()));
            }
            Some("COMPACT") => {
                let mut compacted = 0u64;
                for cn in &nodes {
                    if let Some(d) = &cn.durable {
                        d.compact().expect("compact archival node");
                        compacted += 1;
                    }
                }
                reply(format!("COMPACTED {compacted}"));
            }
            Some("STATS") => {
                for cn in &nodes {
                    let s = cn.node.stats();
                    let served = cn.node.server_stats();
                    let (sent, recv) = cn.node.net_bytes();
                    reply(format!(
                        "STAT name={} mode={} len={} sent={sent} recv={recv} pulls={} \
                         absorbed={} dups={} skipped={} failures={} rounds={} interest={} \
                         served_digests={} served_pulls={} served_subs={}",
                        cn.node.name(),
                        cn.mode(),
                        cn.node.archive().len(),
                        s.pulls,
                        s.txns_absorbed,
                        s.duplicates,
                        s.skipped_positions,
                        s.neighbor_failures,
                        s.rounds,
                        cn.node.interest().len(),
                        served.digests_served,
                        served.pull_pages,
                        served.subscriptions,
                    ));
                }
                reply("END".to_string());
            }
            Some("STOP") => {
                for cn in nodes.drain(..) {
                    if let Some(dir) = &cn.durable_dir {
                        drop(cn.node.shutdown());
                        drop(cn.durable);
                        let _ = std::fs::remove_dir_all(dir);
                    } else {
                        drop(cn.node.shutdown());
                    }
                }
                reply("BYE".to_string());
                return;
            }
            _ => panic!("e12 child: unknown command {line:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Parent half
// ---------------------------------------------------------------------

struct ChildProc {
    idx: usize,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    /// node name → served address, from the child's READY line.
    addrs: BTreeMap<String, String>,
}

impl ChildProc {
    fn spawn(idx: usize, cfg: &ClusterConfig) -> ChildProc {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .arg("--e12-child")
            .args(
                [
                    idx,
                    cfg.children,
                    cfg.nodes_per_child,
                    cfg.publish_txns as usize,
                    cfg.page_limit as usize,
                    cfg.seed as usize,
                ]
                .map(|v| v.to_string()),
            )
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn e12 child");
        let stdin = child.stdin.take().unwrap();
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        stdout.read_line(&mut line).expect("child READY");
        let mut addrs = BTreeMap::new();
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("READY"), "child {idx}: {line:?}");
        for pair in parts {
            let (name, addr) = pair.split_once('=').expect("READY name=addr");
            addrs.insert(name.to_string(), addr.to_string());
        }
        ChildProc {
            idx,
            child,
            stdin,
            stdout,
            addrs,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("child stdin");
        self.stdin.flush().expect("child stdin flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("child reply");
        assert!(!line.is_empty(), "child {} died mid-protocol", self.idx);
        line.trim().to_string()
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Send `line` to every child, then collect one reply line from each —
/// the children run the command concurrently across processes.
fn command_all(children: &mut [ChildProc], line: &str) -> Vec<String> {
    for c in children.iter_mut() {
        c.send(line);
    }
    children.iter_mut().map(|c| c.recv()).collect()
}

/// `key=value` pairs from a reply tail.
fn kv_pairs(reply: &str) -> BTreeMap<String, String> {
    reply
        .split_whitespace()
        .filter_map(|p| p.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Broadcast the full membership to every live child.
fn broadcast_topo(children: &mut [ChildProc]) {
    let members: Vec<String> = children
        .iter()
        .flat_map(|c| c.addrs.iter().map(|(n, a)| format!("{n}={a}")))
        .collect();
    let line = format!("TOPO {}", members.join(" "));
    for reply in command_all(children, &line) {
        assert_eq!(reply, "OK");
    }
}

/// One publish phase: every live peer publishes, and the expectation
/// table absorbs the per-relation counts.
fn publish_phase(children: &mut [ChildProc], txns: u64, expected: &mut BTreeMap<String, u64>) {
    let line = format!("PUBLISH {txns}");
    for reply in command_all(children, &line) {
        for (rel, count) in kv_pairs(&reply) {
            *expected.entry(rel).or_insert(0) += count.parse::<u64>().unwrap();
        }
    }
}

/// What one convergence phase measured.
struct Convergence {
    rounds: usize,
    millis: f64,
    failures: u64,
    converged: bool,
}

/// Run gossip round sweeps until every node's digest matches the
/// expectation table (restricted to its interest), or the cap is hit.
fn converge(
    children: &mut [ChildProc],
    expected: &BTreeMap<String, u64>,
    cap: usize,
) -> Convergence {
    let check_line = format!(
        "CHECK {}",
        expected
            .iter()
            .map(|(rel, c)| format!("{rel}={c}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let start = Instant::now();
    let mut failures = 0u64;
    for round in 1..=cap {
        for reply in command_all(children, "ROUND") {
            let kv = kv_pairs(&reply);
            failures += kv["failures"].parse::<u64>().unwrap();
        }
        let done = command_all(children, &check_line).iter().all(|reply| {
            let frac = reply.strip_prefix("CONV ").expect("CONV reply");
            let (got, want) = frac.split_once('/').unwrap();
            got == want
        });
        if done {
            return Convergence {
                rounds: round,
                millis: start.elapsed().as_secs_f64() * 1e3,
                failures,
                converged: true,
            };
        }
    }
    Convergence {
        rounds: cap,
        millis: start.elapsed().as_secs_f64() * 1e3,
        failures,
        converged: false,
    }
}

/// E12 — run the full cluster scenario and report it.
pub fn e12_mesh_cluster(smoke: bool, variant: &str) -> BenchReport {
    let cfg = ClusterConfig::for_smoke(smoke);
    println!("── E12: mesh cluster — epidemic exchange across OS processes ──");
    println!(
        "{} processes × {} nodes = {} simulated peers (archival node per process; page limit {})",
        cfg.children,
        cfg.nodes_per_child,
        cfg.total_nodes(),
        cfg.page_limit,
    );

    let run_start = Instant::now();
    let mut children: Vec<ChildProc> = (0..cfg.children)
        .map(|i| ChildProc::spawn(i, &cfg))
        .collect();
    broadcast_topo(&mut children);
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();

    // Phase 1: everyone publishes; gossip to full convergence.
    publish_phase(&mut children, cfg.publish_txns, &mut expected);
    let initial = converge(&mut children, &expected, cfg.round_cap);
    println!(
        "  initial convergence: {} round sweeps, {:.0} ms (failures {})",
        initial.rounds, initial.millis, initial.failures
    );

    // Phase 2: every process compacts its archival node mid-run.
    let mut compactions = 0u64;
    for reply in command_all(&mut children, "COMPACT") {
        compactions += reply
            .strip_prefix("COMPACTED ")
            .expect("COMPACTED reply")
            .parse::<u64>()
            .unwrap();
    }
    println!("  compacted {compactions} archival stores");

    // Phase 3: churn — kill the last child process outright; the
    // survivors publish and converge around the hole.
    let dead = children.pop().unwrap();
    let dead_idx = dead.idx;
    dead.kill();
    publish_phase(&mut children, cfg.publish_txns, &mut expected);
    let churn = converge(&mut children, &expected, cfg.round_cap);
    println!(
        "  churn convergence ({} survivors): {} round sweeps, {:.0} ms, {} dead-neighbor failures",
        children.len() * cfg.nodes_per_child,
        churn.rounds,
        churn.millis,
        churn.failures
    );
    assert!(
        churn.failures > 0,
        "killing a process produced no observed neighbor failures"
    );

    // Phase 4: rejoin — a cold replacement process takes the dead one's
    // slot on fresh ports; everyone re-wires, and the rejoiner pulls its
    // own lost history back out of the mesh.
    children.push(ChildProc::spawn(dead_idx, &cfg));
    broadcast_topo(&mut children);
    let rejoin = converge(&mut children, &expected, cfg.round_cap + 20);
    println!(
        "  rejoin convergence: {} round sweeps, {:.0} ms (failures {})",
        rejoin.rounds, rejoin.millis, rejoin.failures
    );

    // Collect per-node stats and shut the cluster down.
    let mut report = BenchReport::new("e12", variant, smoke);
    let total_secs = run_start.elapsed().as_secs_f64().max(1e-9);
    let published_txns: u64 = expected.values().sum();
    let mut bytes_by_mode: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let (mut total_pulls, mut total_absorbed, mut total_dups) = (0u64, 0u64, 0u64);
    for c in children.iter_mut() {
        c.send("STATS");
        loop {
            let line = c.recv();
            if line == "END" {
                break;
            }
            let kv = kv_pairs(&line);
            let num = |key: &str| kv[key].parse::<u64>().unwrap();
            bytes_by_mode
                .entry(kv["mode"].clone())
                .or_default()
                .push(num("recv"));
            total_pulls += num("pulls");
            total_absorbed += num("absorbed");
            total_dups += num("dups");
            report.row([
                ("node", Json::from(kv["name"].as_str())),
                ("process", Json::from(c.idx)),
                ("mode", Json::from(kv["mode"].as_str())),
                ("archive_len", Json::from(num("len"))),
                ("bytes_sent", Json::from(num("sent"))),
                ("bytes_received", Json::from(num("recv"))),
                ("pulls", Json::from(num("pulls"))),
                ("absorbed", Json::from(num("absorbed"))),
                ("duplicates", Json::from(num("dups"))),
                ("skipped_positions", Json::from(num("skipped"))),
                ("neighbor_failures", Json::from(num("failures"))),
                ("gossip_rounds", Json::from(num("rounds"))),
                ("interest_relations", Json::from(num("interest"))),
                ("served_digests", Json::from(num("served_digests"))),
                ("served_pulls", Json::from(num("served_pulls"))),
                ("served_subscriptions", Json::from(num("served_subs"))),
                (
                    "tuples_per_sec",
                    Json::from(num("absorbed") as f64 * ROWS_PER_TXN as f64 / total_secs),
                ),
            ]);
        }
    }
    // Wire-level cluster introspection: pull one registry snapshot per
    // child process through the v2 METRICS opcode (every node of a
    // process shares its process-global registry, so one poll per
    // process avoids double counting). The polling itself exercises the
    // parent-side net client, so the block's own `net_events` moves too.
    let mut cluster_nodes_polled = 0u64;
    let (mut cluster_pages_pulled, mut cluster_server_requests) = (0u64, 0u64);
    for c in children.iter() {
        let Some(addr) = c.addrs.values().next() else {
            continue;
        };
        let snap = RemoteStore::connect_with(addr, cluster_remote_opts())
            .and_then(|remote| remote.metrics());
        let Ok(snap) = snap else { continue };
        cluster_nodes_polled += 1;
        for (name, value) in &snap.counters {
            match name.as_str() {
                "mesh.round.pages_pulled" => cluster_pages_pulled += value,
                "server.requests" => cluster_server_requests += value,
                _ => {}
            }
        }
    }
    let mut obs = crate::json::obs_block();
    if let Json::Obj(fields) = &mut obs {
        fields.insert(
            "cluster_nodes_polled".into(),
            Json::from(cluster_nodes_polled),
        );
        fields.insert(
            "cluster_pages_pulled".into(),
            Json::from(cluster_pages_pulled),
        );
        fields.insert(
            "cluster_server_requests".into(),
            Json::from(cluster_server_requests),
        );
    }
    for c in children.iter_mut() {
        c.send("STOP");
        assert_eq!(c.recv(), "BYE");
    }
    for mut c in children {
        let _ = c.child.wait();
    }

    let avg = |mode: &str| -> f64 {
        let v = &bytes_by_mode[mode];
        v.iter().sum::<u64>() as f64 / v.len() as f64
    };
    let (full_avg, interest_avg) = (avg("full"), avg("interest"));
    let full_min = *bytes_by_mode["full"].iter().min().unwrap();
    let interest_max = *bytes_by_mode["interest"].iter().max().unwrap();
    println!(
        "  bytes pulled per node: full-replication avg {:.0}, interest avg {:.0} ({:.1}× less)",
        full_avg,
        interest_avg,
        full_avg / interest_avg.max(1.0),
    );
    assert!(
        interest_avg < full_avg,
        "interest-based nodes must ship strictly less than full-replication nodes \
         ({interest_avg:.0} vs {full_avg:.0})"
    );

    report.tuples_per_sec = published_txns as f64 * ROWS_PER_TXN as f64 / total_secs;
    report.summary_extra("processes", cfg.children);
    report.summary_extra("sim_peers", cfg.total_nodes());
    report.summary_extra("full_nodes", bytes_by_mode.get("full").map_or(0, Vec::len));
    report.summary_extra(
        "interest_nodes",
        bytes_by_mode.get("interest").map_or(0, Vec::len),
    );
    report.summary_extra("published_txns", published_txns);
    report.summary_extra(
        "converged",
        initial.converged && churn.converged && rejoin.converged,
    );
    report.summary_extra("converge_rounds_initial", initial.rounds);
    report.summary_extra("converge_ms_initial", initial.millis);
    report.summary_extra("converge_rounds_churn", churn.rounds);
    report.summary_extra("converge_ms_churn", churn.millis);
    report.summary_extra("converge_rounds_rejoin", rejoin.rounds);
    report.summary_extra("converge_ms_rejoin", rejoin.millis);
    report.summary_extra("churn_failures", churn.failures);
    report.summary_extra("compactions", compactions);
    report.summary_extra("bytes_recv_full_avg", full_avg);
    report.summary_extra("bytes_recv_interest_avg", interest_avg);
    report.summary_extra("bytes_recv_full_min", full_min);
    report.summary_extra("bytes_recv_interest_max", interest_max);
    report.summary_extra("bytes_ratio", full_avg / interest_avg.max(1.0));
    report.summary_extra("absorbed_txns", total_absorbed);
    report.summary_extra("duplicate_txns", total_dups);
    report.summary_extra("store_pages", total_pulls);
    report.summary_extra("store_unavailable", 0u64);
    report.summary_extra("obs", obs);
    assert!(
        report.to_json().get("summary").unwrap().get("converged") == Some(&Json::Bool(true)),
        "cluster failed to converge (initial={} churn={} rejoin={})",
        initial.converged,
        churn.converged,
        rejoin.converged
    );
    println!();
    report
}
