//! Deterministic workload generators for experiments E1–E11.

use orchestra_core::{demo, Cdss};
use orchestra_datalog::{Atom, Engine, Rule, Tgd};
use orchestra_reconcile::{Candidate, TrustPolicy};
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The shared key/value schema used by the synthetic topologies.
pub fn kv_schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

/// E1: a chain CDSS `P0 → P1 → … → P(n-1)` over the kv schema, connected
/// by one-directional copy mappings.
pub fn chain_cdss(n_peers: usize) -> Cdss {
    assert!(n_peers >= 2);
    let mut b = Cdss::builder();
    for i in 0..n_peers {
        b = b.peer(format!("P{i}"), kv_schema(), TrustPolicy::open(1));
    }
    for i in 0..n_peers - 1 {
        b = b.mapping(
            Tgd::identity(
                format!("M{i}->{}", i + 1),
                format!("P{i}.R"),
                format!("P{}.R", i + 1),
                2,
            )
            .unwrap(),
        );
    }
    b.build().unwrap()
}

/// E1: a star CDSS with one hub and `n - 1` spokes, bidirectional copy
/// mappings hub ↔ spoke.
pub fn star_cdss(n_peers: usize) -> Cdss {
    assert!(n_peers >= 2);
    let mut b = Cdss::builder().peer("Hub", kv_schema(), TrustPolicy::open(1));
    for i in 1..n_peers {
        b = b.peer(format!("P{i}"), kv_schema(), TrustPolicy::open(1));
    }
    for i in 1..n_peers {
        b = b.identity("Hub", format!("P{i}")).expect("shared schema");
    }
    b.build().unwrap()
}

/// Publish `n_updates` fresh-key inserts at `peer`, in transactions of
/// `txn_size`, keys offset by `key_base`.
pub fn publish_inserts(
    cdss: &mut Cdss,
    peer: &PeerId,
    key_base: i64,
    n_updates: usize,
    txn_size: usize,
) -> Vec<TxnId> {
    let mut txns: Vec<Vec<Update>> = Vec::new();
    let mut current: Vec<Update> = Vec::new();
    for i in 0..n_updates {
        let k = key_base + i as i64;
        current.push(Update::insert("R", tuple![k, k * 7 % 1001]));
        if current.len() == txn_size {
            txns.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        txns.push(current);
    }
    cdss.publish_transactions(peer, txns).unwrap()
}

/// E2: the Figure 2 bioinformatics network seeded with `n_seqs` sequences
/// at Alaska (one organism per 8 sequences, one transaction per organism).
pub fn bio_cdss_seeded(n_seqs: usize) -> Cdss {
    let mut cdss = demo::figure2().unwrap();
    let alaska = PeerId::new("Alaska");
    let mut txns: Vec<Vec<Update>> = Vec::new();
    let mut oid = 0i64;
    let mut i = 0usize;
    while i < n_seqs {
        oid += 1;
        let mut txn = vec![Update::insert("O", tuple![format!("org{oid}"), oid])];
        for j in 0..8.min(n_seqs - i) {
            let pid = (oid * 1000) + j as i64;
            txn.push(Update::insert("P", tuple![format!("prot{pid}"), pid]));
            txn.push(Update::insert(
                "S",
                tuple![oid, pid, format!("SEQ-{oid}-{j}")],
            ));
        }
        i += 8.min(n_seqs - i);
        txns.push(txn);
    }
    cdss.publish_transactions(&alaska, txns).unwrap();
    cdss
}

/// The Figure 2 mapping program compiled against the combined qualified
/// schema — for engine-level experiments (E4–E6) that bypass the CDSS.
pub fn bio_engine_parts() -> (DatabaseSchema, Vec<Rule>) {
    let s1 = demo::sigma1().unwrap();
    let s2 = demo::sigma2().unwrap();
    let mut combined = DatabaseSchema::new("cdss");
    for (peer, schema) in [
        ("Alaska", &s1),
        ("Beijing", &s1),
        ("Crete", &s2),
        ("Dresden", &s2),
    ] {
        for rel in orchestra_core::qualified_schema(&PeerId::new(peer), schema).unwrap() {
            combined.add_relation(rel).unwrap();
        }
    }
    let mut rules = Vec::new();
    for m in orchestra_core::identity_mappings(&PeerId::new("Alaska"), &PeerId::new("Beijing"), &s1)
        .unwrap()
    {
        rules.extend(m.compile().unwrap());
    }
    for m in orchestra_core::identity_mappings(&PeerId::new("Crete"), &PeerId::new("Dresden"), &s2)
        .unwrap()
    {
        rules.extend(m.compile().unwrap());
    }
    rules.extend(demo::ma_to_c().unwrap().compile().unwrap());
    rules.extend(demo::mc_to_a().unwrap().compile().unwrap());
    (combined, rules)
}

/// The base facts for `n_seqs` sequences in Alaska's qualified relations.
pub fn bio_base_facts(n_seqs: usize) -> Vec<(&'static str, Tuple)> {
    let mut out = Vec::with_capacity(n_seqs * 3);
    let mut oid = 0i64;
    let mut i = 0usize;
    while i < n_seqs {
        oid += 1;
        out.push(("Alaska.O", tuple![format!("org{oid}"), oid]));
        for j in 0..8.min(n_seqs - i) {
            let pid = (oid * 1000) + j as i64;
            out.push(("Alaska.P", tuple![format!("prot{pid}"), pid]));
            out.push(("Alaska.S", tuple![oid, pid, format!("SEQ-{oid}-{j}")]));
        }
        i += 8.min(n_seqs - i);
    }
    out
}

/// Build a warm engine loaded with `facts`, optionally without provenance.
pub fn warm_engine(
    schema: DatabaseSchema,
    rules: Vec<Rule>,
    facts: &[(&'static str, Tuple)],
    provenance: bool,
) -> Engine {
    let mut e = Engine::with_provenance(schema, rules, provenance).unwrap();
    for (rel, t) in facts {
        e.insert_base(rel, t.clone()).unwrap();
    }
    e.propagate().unwrap();
    e
}

/// E11: a random directed graph plus the transitive-closure program — the
/// join-heavy, recursion-heavy workload the thread-scaling experiment
/// propagates. Nodes are ints; edges are distinct, seeded, and dense
/// enough that semi-naive rounds carry thousands of delta tuples (the
/// regime where shard-parallel evaluation pays).
pub fn tc_parts(
    n_nodes: usize,
    n_edges: usize,
    seed: u64,
) -> (DatabaseSchema, Vec<Rule>, Vec<Tuple>) {
    let db = DatabaseSchema::new("tc")
        .with_relation(
            RelationSchema::from_parts("edge", &[("src", ValueType::Int), ("dst", ValueType::Int)])
                .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts("path", &[("src", ValueType::Int), ("dst", ValueType::Int)])
                .unwrap(),
        )
        .unwrap();
    let rules = vec![
        Rule::new(
            "base",
            Atom::vars("path", &["x", "y"]),
            vec![Atom::vars("edge", &["x", "y"])],
            vec![],
        )
        .unwrap(),
        Rule::new(
            "step",
            Atom::vars("path", &["x", "z"]),
            vec![
                Atom::vars("edge", &["x", "y"]),
                Atom::vars("path", &["y", "z"]),
            ],
            vec![],
        )
        .unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let a = rng.random_range(0..n_nodes as i64);
        let b = rng.random_range(0..n_nodes as i64);
        if a != b && seen.insert((a, b)) {
            edges.push(tuple![a, b]);
        }
    }
    (db, rules, edges)
}

/// E11: a random directed graph plus the triangle query
/// `tri(x,y,z) :- edge(x,y), edge(y,z), edge(z,x)` — the probe-bound
/// workload: the join phase scans two-hop candidates (quadratic in
/// degree, all parallel) while firings stay rare, so thread scaling is
/// limited only by cores, not by the sequential provenance merge.
pub fn triangle_parts(
    n_nodes: usize,
    n_edges: usize,
    seed: u64,
) -> (DatabaseSchema, Vec<Rule>, Vec<Tuple>) {
    let db = DatabaseSchema::new("tri")
        .with_relation(
            RelationSchema::from_parts("edge", &[("src", ValueType::Int), ("dst", ValueType::Int)])
                .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts(
                "tri",
                &[
                    ("a", ValueType::Int),
                    ("b", ValueType::Int),
                    ("c", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    let rules = vec![Rule::new(
        "tri",
        Atom::vars("tri", &["x", "y", "z"]),
        vec![
            Atom::vars("edge", &["x", "y"]),
            Atom::vars("edge", &["y", "z"]),
            Atom::vars("edge", &["z", "x"]),
        ],
        vec![],
    )
    .unwrap()];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let a = rng.random_range(0..n_nodes as i64);
        let b = rng.random_range(0..n_nodes as i64);
        if a != b && seen.insert((a, b)) {
            edges.push(tuple![a, b]);
        }
    }
    (db, rules, edges)
}

/// E7: a reconciliation workload: `n_txns` single-update transactions over
/// a keyspace sized so that ~`conflict_pct`% of transactions collide on a
/// hot key with a distinct value; `dep_depth` chains each group of
/// transactions into antecedent chains of that length.
pub fn reconcile_candidates(
    n_txns: usize,
    conflict_pct: u32,
    dep_depth: usize,
    seed: u64,
) -> Vec<Candidate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_txns);
    let mut chain_prev: Option<(TxnId, i64)> = None;
    let mut chain_left = 0usize;
    for i in 0..n_txns {
        let peer = PeerId::new(format!("peer{}", i % 16));
        let id = TxnId::new(peer, (i / 16) as u64 + 1);
        let conflicting = rng.random_range(0..100u32) < conflict_pct;
        let (update, antecedents) = if let Some((prev_id, prev_key)) = chain_prev.clone() {
            // Continue a dependency chain: modify the previous write.
            let u = Update::modify("R", tuple![prev_key, 0], tuple![prev_key, i as i64]);
            (u, std::collections::BTreeSet::from([prev_id]))
        } else if conflicting {
            // Write a hot key with a per-txn value: guaranteed conflicts.
            let hot = rng.random_range(0..4i64);
            (
                Update::insert("R", tuple![hot, i as i64]),
                Default::default(),
            )
        } else {
            // Fresh key, no conflict.
            (
                Update::insert("R", tuple![1000 + i as i64, i as i64]),
                Default::default(),
            )
        };
        // Chain bookkeeping.
        if chain_left > 0 {
            chain_left -= 1;
            if chain_left == 0 {
                chain_prev = None;
            } else if let Update::Modify { new, .. } = &update {
                chain_prev = Some((id.clone(), new[0].as_int().unwrap()));
            }
        } else if dep_depth > 1 && !conflicting && rng.random_bool(0.3) {
            if let Update::Insert { tuple: t, .. } = &update {
                chain_prev = Some((id.clone(), t[0].as_int().unwrap()));
                chain_left = dep_depth - 1;
            }
        }
        out.push(Candidate::from_txn(
            Transaction::new(id, Epoch::new(1), vec![update]).with_antecedents(antecedents),
        ));
    }
    out
}

/// E7 baseline: a naive reconciler that pairwise-compares **all**
/// transactions (no priority levels, no groups) and accepts greedily —
/// the O(n²)-oblivious strawman the paper's engineered algorithm replaces.
pub fn naive_reconcile(candidates: &[Candidate], schema: &DatabaseSchema) -> (usize, usize) {
    let mut accepted: Vec<&Candidate> = Vec::new();
    let mut rejected = 0usize;
    'outer: for c in candidates {
        for a in &accepted {
            if c.txn.conflicts_with(&a.txn, schema).unwrap() {
                rejected += 1;
                continue 'outer;
            }
        }
        accepted.push(c);
    }
    (accepted.len(), rejected)
}

/// E9: a random provenance polynomial with `terms` monomials over
/// `vars` variables with exponents ≤ 2.
pub fn random_polynomial(
    terms: usize,
    vars: u32,
    seed: u64,
) -> orchestra_provenance::Polynomial<u32> {
    use orchestra_provenance::{Monomial, Polynomial, Semiring};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Polynomial::zero();
    for _ in 0..terms {
        let n_factors = rng.random_range(1..4usize);
        let pairs: Vec<(u32, u32)> = (0..n_factors)
            .map(|_| (rng.random_range(0..vars), rng.random_range(1..3u32)))
            .collect();
        p.plus_assign(&Polynomial::term(
            Monomial::from_pairs(pairs),
            rng.random_range(1..3u64),
        ));
    }
    p
}

/// Sorted values of a kv relation at a peer (for correctness checks in
/// benches/experiments).
pub fn kv_state(cdss: &Cdss, peer: &str) -> Vec<(i64, i64)> {
    cdss.peer(&PeerId::new(peer))
        .unwrap()
        .instance()
        .relation("R")
        .unwrap()
        .iter()
        .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
        .collect()
}

/// Helper: total tuples at a peer.
pub fn peer_total(cdss: &Cdss, peer: &str) -> usize {
    cdss.peer(&PeerId::new(peer))
        .unwrap()
        .instance()
        .total_tuples()
}

/// Helper: turn a `Value` column into i64 (panics on mismatch).
pub fn as_i64(v: &Value) -> i64 {
    v.as_int().expect("int column")
}
