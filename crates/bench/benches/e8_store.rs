//! E8 — the update archive backends: publish/fetch cost vs replication
//! factor (simulated DHT) and vs durability policy (WAL-backed store),
//! plus crash-recovery (reopen) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_relational::tuple;
use orchestra_store::{
    CacheMode, DurableOptions, DurableStore, ReplicatedStore, SyncPolicy, UpdateStore,
};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orchestra-e8-bench-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn txns(n: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::new(
                TxnId::new(PeerId::new("pub"), i),
                Epoch::new(1),
                vec![Update::insert("R", tuple![i as i64, 0])],
            )
        })
        .collect()
}

fn bench_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_publish_1000");
    g.sample_size(10);
    for repl in [1usize, 3, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(repl), &repl, |b, &repl| {
            b.iter(|| {
                let store = ReplicatedStore::new(64, repl).unwrap();
                store.publish(Epoch::new(1), txns(1000)).unwrap();
                black_box(store.len())
            });
        });
    }
    g.finish();
}

fn bench_fetch_under_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_fetch_churn25");
    g.sample_size(10);
    for repl in [3usize, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(repl), &repl, |b, &repl| {
            let store = ReplicatedStore::new(64, repl).unwrap();
            store.publish(Epoch::new(1), txns(1000)).unwrap();
            for node in 0..16 {
                store.take_node_down((node * 7) % 64);
            }
            b.iter(|| black_box(store.fetch_since(Epoch::zero()).unwrap().len()));
        });
    }
    g.finish();
}

fn bench_durable_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_durable_publish_1000");
    g.sample_size(10);
    for (label, policy) in [
        ("fsync-always", SyncPolicy::Always),
        ("fsync-every-64", SyncPolicy::EveryN(64)),
        ("fsync-never", SyncPolicy::Never),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                let dir = fresh_dir();
                let store = DurableStore::open_with(
                    &dir,
                    DurableOptions {
                        sync_policy: policy,
                        ..DurableOptions::default()
                    },
                )
                .unwrap();
                // Many small publishes (one WAL append each), so the sync
                // policies actually differ in fsync count.
                for (i, batch) in txns(1000).chunks(10).enumerate() {
                    store
                        .publish(Epoch::new(i as u64 + 1), batch.to_vec())
                        .unwrap();
                }
                store.sync().unwrap();
                let n = store.len();
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
                black_box(n)
            });
        });
    }
    g.finish();
}

fn bench_durable_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_durable_fetch_1000");
    g.sample_size(10);
    for (label, cache) in [
        ("cached", CacheMode::Cached),
        ("disk-only", CacheMode::DiskOnly),
    ] {
        let dir = fresh_dir();
        let store = DurableStore::open_with(
            &dir,
            DurableOptions {
                cache,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        store.publish(Epoch::new(1), txns(1000)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| black_box(store.fetch_since(Epoch::zero()).unwrap().len()));
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn bench_durable_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_durable_recovery_1000");
    g.sample_size(10);
    // Recovery cost with a raw WAL vs a compacted archive.
    for (label, compacted) in [("wal-replay", false), ("compacted", true)] {
        let dir = fresh_dir();
        {
            let store = DurableStore::open(&dir).unwrap();
            for e in 0..10u64 {
                store
                    .publish(Epoch::new(e + 1), txns_offset(100, e * 100))
                    .unwrap();
            }
            if compacted {
                store.compact().unwrap();
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let store = DurableStore::open(&dir).unwrap();
                black_box(store.len())
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn txns_offset(n: u64, base: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::new(
                TxnId::new(PeerId::new("pub"), base + i),
                Epoch::new(1),
                vec![Update::insert("R", tuple![(base + i) as i64, 0])],
            )
        })
        .collect()
}

criterion_group!(
    benches,
    bench_publish,
    bench_fetch_under_churn,
    bench_durable_publish,
    bench_durable_fetch,
    bench_durable_recovery
);
criterion_main!(benches);
