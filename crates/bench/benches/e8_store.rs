//! E8 — the simulated P2P store: publish/fetch cost vs replication factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_relational::tuple;
use orchestra_store::{ReplicatedStore, UpdateStore};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::hint::black_box;

fn txns(n: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::new(
                TxnId::new(PeerId::new("pub"), i),
                Epoch::new(1),
                vec![Update::insert("R", tuple![i as i64, 0])],
            )
        })
        .collect()
}

fn bench_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_publish_1000");
    g.sample_size(10);
    for repl in [1usize, 3, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(repl), &repl, |b, &repl| {
            b.iter(|| {
                let store = ReplicatedStore::new(64, repl).unwrap();
                store.publish(Epoch::new(1), txns(1000)).unwrap();
                black_box(store.len())
            });
        });
    }
    g.finish();
}

fn bench_fetch_under_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_fetch_churn25");
    g.sample_size(10);
    for repl in [3usize, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(repl), &repl, |b, &repl| {
            let store = ReplicatedStore::new(64, repl).unwrap();
            store.publish(Epoch::new(1), txns(1000)).unwrap();
            for node in 0..16 {
                store.take_node_down((node * 7) % 64);
            }
            b.iter(|| black_box(store.fetch_since(Epoch::zero()).unwrap().len()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_publish, bench_fetch_under_churn);
criterion_main!(benches);
