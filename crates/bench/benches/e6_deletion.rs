//! E6 — deletion propagation: provenance-based vs DRed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{bio_base_facts, bio_engine_parts, warm_engine};
use orchestra_datalog::DeletionAlgorithm;
use std::hint::black_box;

fn bench_deletion(c: &mut Criterion) {
    let (schema, rules) = bio_engine_parts();
    let n = 512usize;
    let facts = bio_base_facts(n);
    let victims: Vec<_> = facts
        .iter()
        .filter(|(rel, _)| *rel == "Alaska.S")
        .take(32)
        .cloned()
        .collect();

    for (label, algo) in [
        ("dred", DeletionAlgorithm::DRed),
        ("provenance", DeletionAlgorithm::ProvenanceBased),
    ] {
        let mut g = c.benchmark_group(format!("e6_delete_{label}"));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || warm_engine(schema.clone(), rules.clone(), &facts, true),
                |mut engine| {
                    for (rel, t) in &victims {
                        engine.remove_base(rel, t, algo).unwrap();
                    }
                    black_box(engine.total_tuples())
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.finish();
    }
}

criterion_group!(benches, bench_deletion);
criterion_main!(benches);
