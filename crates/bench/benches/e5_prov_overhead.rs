//! E5 — cost of maintaining provenance during update exchange.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{bio_base_facts, bio_engine_parts, warm_engine};
use std::hint::black_box;

fn bench_prov_overhead(c: &mut Criterion) {
    let (schema, rules) = bio_engine_parts();
    for provenance in [false, true] {
        let label = if provenance { "with_prov" } else { "no_prov" };
        let mut g = c.benchmark_group(format!("e5_{label}"));
        g.sample_size(10);
        for n in [128usize, 512] {
            let facts = bio_base_facts(n);
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        warm_engine(schema.clone(), rules.clone(), &facts, provenance)
                            .total_tuples(),
                    )
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_prov_overhead);
criterion_main!(benches);
