//! E2 — the Figure 2 bioinformatics network under growing load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::bio_cdss_seeded;
use orchestra_updates::PeerId;
use std::hint::black_box;

fn bench_bio_reconcile(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_bio_reconcile");
    g.sample_size(10);
    for n in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cdss = bio_cdss_seeded(n);
                cdss.reconcile(&PeerId::new("Dresden")).unwrap();
                black_box(
                    cdss.peer(&PeerId::new("Dresden"))
                        .unwrap()
                        .instance()
                        .total_tuples(),
                )
            });
        });
    }
    g.finish();
}

fn bench_bio_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_bio_publish");
    g.sample_size(10);
    for n in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(bio_cdss_seeded(n).stats().published_txns));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bio_reconcile, bench_bio_publish);
criterion_main!(benches);
