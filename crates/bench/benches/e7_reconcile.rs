//! E7 — reconciliation scaling: transaction count × conflict rate, greedy
//! vs the naive O(n²) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{kv_schema, naive_reconcile, reconcile_candidates};
use orchestra_reconcile::{Reconciler, TrustPolicy};
use std::hint::black_box;

fn bench_greedy(c: &mut Criterion) {
    for pct in [0u32, 20] {
        let mut g = c.benchmark_group(format!("e7_greedy_conflict{pct}"));
        g.sample_size(10);
        for n in [256usize, 1024] {
            let cands = reconcile_candidates(n, pct, 3, 42);
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter_batched(
                    || (Reconciler::new(kv_schema()), cands.clone()),
                    |(mut r, cands)| {
                        black_box(
                            r.reconcile(cands, &TrustPolicy::open(1))
                                .unwrap()
                                .accepted
                                .len(),
                        )
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        g.finish();
    }
}

fn bench_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_naive_conflict20");
    g.sample_size(10);
    let schema = kv_schema();
    for n in [256usize, 1024] {
        let cands = reconcile_candidates(n, 20, 3, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(naive_reconcile(&cands, &schema)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_greedy, bench_naive);
criterion_main!(benches);
