//! E1 — end-to-end update exchange over chain/star topologies (Fig. 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{chain_cdss, publish_inserts, star_cdss};
use orchestra_updates::PeerId;
use std::hint::black_box;

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_chain_exchange");
    g.sample_size(10);
    for peers in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            b.iter(|| {
                let mut cdss = chain_cdss(peers);
                publish_inserts(&mut cdss, &PeerId::new("P0"), 0, 64, 8);
                for i in 1..peers {
                    cdss.reconcile(&PeerId::new(format!("P{i}"))).unwrap();
                }
                black_box(cdss.stats().published_txns)
            });
        });
    }
    g.finish();
}

fn bench_star(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_star_exchange");
    g.sample_size(10);
    for peers in [4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            b.iter(|| {
                let mut cdss = star_cdss(peers);
                for i in 1..peers {
                    publish_inserts(
                        &mut cdss,
                        &PeerId::new(format!("P{i}")),
                        (i as i64) * 10_000,
                        32,
                        8,
                    );
                }
                cdss.reconcile(&PeerId::new("Hub")).unwrap();
                black_box(cdss.current_epoch())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chain, bench_star);
criterion_main!(benches);
