//! E9 — provenance polynomial algebra microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::random_polynomial;
use orchestra_provenance::{Boolean, Semiring, Tropical};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let sizes = [(16usize, 8u32), (64, 16), (256, 32)];

    let mut g = c.benchmark_group("e9_plus");
    for &(terms, vars) in &sizes {
        let a = random_polynomial(terms, vars, 1);
        let b = random_polynomial(terms, vars, 2);
        g.bench_with_input(BenchmarkId::from_parameter(terms), &terms, |bch, _| {
            bch.iter(|| black_box(a.plus(&b)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e9_times");
    for &(terms, vars) in &sizes {
        let a = random_polynomial(terms, vars, 1);
        let b = random_polynomial(terms, vars, 2);
        g.bench_with_input(BenchmarkId::from_parameter(terms), &terms, |bch, _| {
            bch.iter(|| black_box(a.times(&b)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e9_eval_boolean");
    for &(terms, vars) in &sizes {
        let a = random_polynomial(terms, vars, 1);
        g.bench_with_input(BenchmarkId::from_parameter(terms), &terms, |bch, _| {
            bch.iter(|| black_box(a.eval(|v| Boolean(v % 3 != 0))));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e9_eval_tropical");
    for &(terms, vars) in &sizes {
        let a = random_polynomial(terms, vars, 1);
        g.bench_with_input(BenchmarkId::from_parameter(terms), &terms, |bch, _| {
            bch.iter(|| black_box(a.eval(|v| Tropical::cost((*v as u64) % 7))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
