//! E4 — incremental insert propagation vs full recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{bio_base_facts, bio_engine_parts, warm_engine};
use std::hint::black_box;

fn bench_incremental_vs_full(c: &mut Criterion) {
    let (schema, rules) = bio_engine_parts();
    let base = 512usize;
    let base_facts = bio_base_facts(base);

    let mut g = c.benchmark_group("e4_incremental_delta");
    g.sample_size(10);
    for delta in [8usize, 64, 512] {
        let delta_facts: Vec<_> = bio_base_facts(base + delta)
            .into_iter()
            .skip(base_facts.len())
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter_batched(
                || warm_engine(schema.clone(), rules.clone(), &base_facts, true),
                |mut engine| {
                    for (rel, t) in &delta_facts {
                        engine.insert_base(rel, t.clone()).unwrap();
                    }
                    engine.propagate().unwrap();
                    black_box(engine.total_tuples())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e4_full_recompute");
    g.sample_size(10);
    for delta in [8usize, 64, 512] {
        let all = bio_base_facts(base + delta);
        g.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter(|| {
                black_box(warm_engine(schema.clone(), rules.clone(), &all, true).total_tuples())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);
