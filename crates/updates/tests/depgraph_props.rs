//! Property tests for the transaction dependency graph.

use orchestra_updates::{DepGraph, PeerId, TxnId};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn id(n: usize) -> TxnId {
    TxnId::new(PeerId::new("P"), n as u64)
}

/// A random DAG: node i may depend only on nodes < i (guarantees acyclicity).
fn dag_strategy() -> impl Strategy<Value = Vec<BTreeSet<usize>>> {
    proptest::collection::vec(proptest::collection::btree_set(0usize..12, 0..4), 1..12).prop_map(
        |nodes| {
            nodes
                .into_iter()
                .enumerate()
                .map(|(i, deps)| deps.into_iter().filter(|&d| d < i).collect())
                .collect()
        },
    )
}

fn build(dag: &[BTreeSet<usize>]) -> DepGraph {
    let mut g = DepGraph::new();
    for (i, deps) in dag.iter().enumerate() {
        g.insert(id(i), deps.iter().map(|&d| id(d)).collect())
            .unwrap();
    }
    g
}

proptest! {
    /// Topological order puts every antecedent before its dependent.
    #[test]
    fn topo_order_respects_edges(dag in dag_strategy()) {
        let g = build(&dag);
        let order = g.topo_order().unwrap();
        let pos = |t: &TxnId| order.iter().position(|x| x == t).unwrap();
        for (i, deps) in dag.iter().enumerate() {
            for &d in deps {
                prop_assert!(pos(&id(d)) < pos(&id(i)), "{d} before {i}");
            }
        }
        prop_assert_eq!(order.len(), dag.len());
    }

    /// The antecedent closure contains the direct antecedents and is
    /// transitively closed.
    #[test]
    fn antecedent_closure_is_closed(dag in dag_strategy()) {
        let g = build(&dag);
        for (i, deps) in dag.iter().enumerate() {
            let closure = g.antecedent_closure(&id(i)).unwrap();
            for &d in deps {
                prop_assert!(closure.contains(&id(d)));
            }
            // Transitivity: antecedents of members are members.
            for m in &closure {
                for a in g.antecedents_of(m).unwrap() {
                    prop_assert!(closure.contains(a));
                }
            }
            prop_assert!(!closure.contains(&id(i)), "closure excludes self");
        }
    }

    /// Dependent closure is the inverse relation of antecedent closure.
    #[test]
    fn closures_are_inverse(dag in dag_strategy()) {
        let g = build(&dag);
        for i in 0..dag.len() {
            for j in 0..dag.len() {
                let i_in_deps_of_j = g.dependent_closure(&id(j)).unwrap().contains(&id(i));
                let j_in_ants_of_i = g.antecedent_closure(&id(i)).unwrap().contains(&id(j));
                prop_assert_eq!(i_in_deps_of_j, j_in_ants_of_i);
            }
        }
    }

    /// `topo_order_of` preserves relative order and exactly covers the subset.
    #[test]
    fn subset_order_is_consistent(dag in dag_strategy(), picks in proptest::collection::btree_set(0usize..12, 0..8)) {
        let g = build(&dag);
        let subset: BTreeSet<TxnId> = picks
            .into_iter()
            .filter(|&p| p < dag.len())
            .map(id)
            .collect();
        let sub_order = g.topo_order_of(&subset).unwrap();
        prop_assert_eq!(sub_order.len(), subset.len());
        let full = g.topo_order().unwrap();
        let pos_full = |t: &TxnId| full.iter().position(|x| x == t).unwrap();
        for w in sub_order.windows(2) {
            prop_assert!(pos_full(&w[0]) < pos_full(&w[1]));
        }
    }
}
