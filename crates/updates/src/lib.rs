//! # orchestra-updates
//!
//! The update and transaction model of the Orchestra CDSS.
//!
//! Section 2 of the paper makes two modeling commitments that distinguish a
//! CDSS from classical data integration/exchange:
//!
//! 1. **Transactions are the unit of propagation.** Information about one
//!    real-world entity spans tuples in several relations; transactional
//!    atomicity must survive translation and reconciliation, so updates stay
//!    grouped in [`Transaction`]s end to end.
//! 2. **Data dependencies between transactions induce a dependency graph**
//!    that reconciliation must respect: a transaction that modifies a tuple
//!    inserted by an *antecedent* transaction can only be accepted if the
//!    antecedent is, and must be rejected/deferred if the antecedent is.
//!
//! This crate provides:
//!
//! * [`Update`] — tuple-level insert / delete / modify, keyed by the
//!   relation's declared key,
//! * [`Transaction`] / [`TxnId`] — grouped updates with explicit antecedent
//!   sets and origin peer,
//! * [`WriterIndex`] — derives antecedents ("who last wrote this key?")
//!   when transactions are recorded against a history,
//! * [`DepGraph`] — the transaction dependency graph with transitive
//!   dependent/antecedent closure used for cascading accept/reject/defer,
//! * [`Epoch`] / [`LogicalClock`] — the logical clock advanced by each
//!   update exchange.

pub mod clock;
pub mod depgraph;
pub mod error;
pub mod txn;
pub mod update;
pub mod writer_index;

pub use clock::{Epoch, LogicalClock};
pub use depgraph::DepGraph;
pub use error::UpdateError;
pub use txn::{PeerId, Transaction, TxnId};
pub use update::{Update, WriteOutcome};
pub use writer_index::WriterIndex;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, UpdateError>;
