//! Tuple-level updates.

use crate::error::UpdateError;
use crate::Result;
use orchestra_relational::{Instance, RelationSchema, Tuple};
use std::fmt;
use std::sync::Arc;

/// A single tuple-level update against one relation.
///
/// `Modify` is first-class (not sugar for delete+insert) because the CDSS
/// dependency semantics care: modifying a tuple *depends on* the
/// transaction that produced the tuple's current version, whereas an
/// insert of a fresh key does not.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Update {
    /// Insert a new tuple.
    Insert {
        /// Target relation name.
        relation: Arc<str>,
        /// The inserted tuple.
        tuple: Tuple,
    },
    /// Delete an existing tuple (exact version).
    Delete {
        /// Target relation name.
        relation: Arc<str>,
        /// The deleted tuple (the version being removed).
        tuple: Tuple,
    },
    /// Replace the tuple with key `key(old)` by `new` (same key).
    Modify {
        /// Target relation name.
        relation: Arc<str>,
        /// The prior version.
        old: Tuple,
        /// The new version; must agree with `old` on the key columns.
        new: Tuple,
    },
}

/// The net effect of a transaction on one key: the final tuple version, or
/// deletion. Used for conflict detection between transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The key ends up holding this tuple.
    Present(Tuple),
    /// The key ends up absent.
    Absent,
}

impl Update {
    /// Insert constructor.
    pub fn insert(relation: impl Into<Arc<str>>, tuple: Tuple) -> Update {
        Update::Insert {
            relation: relation.into(),
            tuple,
        }
    }

    /// Delete constructor.
    pub fn delete(relation: impl Into<Arc<str>>, tuple: Tuple) -> Update {
        Update::Delete {
            relation: relation.into(),
            tuple,
        }
    }

    /// Modify constructor.
    pub fn modify(relation: impl Into<Arc<str>>, old: Tuple, new: Tuple) -> Update {
        Update::Modify {
            relation: relation.into(),
            old,
            new,
        }
    }

    /// The relation this update targets.
    pub fn relation(&self) -> &Arc<str> {
        match self {
            Update::Insert { relation, .. }
            | Update::Delete { relation, .. }
            | Update::Modify { relation, .. } => relation,
        }
    }

    /// The tuple version this update *reads* (the one it depends on):
    /// `Delete`/`Modify` read the old version; `Insert` reads nothing.
    pub fn read_version(&self) -> Option<&Tuple> {
        match self {
            Update::Insert { .. } => None,
            Update::Delete { tuple, .. } => Some(tuple),
            Update::Modify { old, .. } => Some(old),
        }
    }

    /// The tuple version this update *writes*: `Insert`/`Modify` write the
    /// new version; `Delete` writes nothing.
    pub fn written_version(&self) -> Option<&Tuple> {
        match self {
            Update::Insert { tuple, .. } => Some(tuple),
            Update::Delete { .. } => None,
            Update::Modify { new, .. } => Some(new),
        }
    }

    /// The key this update writes, given the relation's schema.
    pub fn key(&self, schema: &RelationSchema) -> Tuple {
        match self {
            Update::Insert { tuple, .. } => schema.key_of(tuple),
            Update::Delete { tuple, .. } => schema.key_of(tuple),
            Update::Modify { old, .. } => schema.key_of(old),
        }
    }

    /// The outcome this update leaves at its key.
    pub fn outcome(&self) -> WriteOutcome {
        match self {
            Update::Insert { tuple, .. } => WriteOutcome::Present(tuple.clone()),
            Update::Delete { .. } => WriteOutcome::Absent,
            Update::Modify { new, .. } => WriteOutcome::Present(new.clone()),
        }
    }

    /// Validate against the relation schema: tuple shapes, and for `Modify`
    /// that the key is unchanged.
    pub fn validate(&self, schema: &RelationSchema) -> Result<()> {
        match self {
            Update::Insert { tuple, .. } | Update::Delete { tuple, .. } => {
                schema.validate(tuple)?;
            }
            Update::Modify { relation, old, new } => {
                schema.validate(old)?;
                schema.validate(new)?;
                if schema.key_of(old) != schema.key_of(new) {
                    return Err(UpdateError::KeyChangedInModify {
                        relation: relation.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The inverse update (used to roll back and for compensation).
    pub fn inverted(&self) -> Update {
        match self {
            Update::Insert { relation, tuple } => Update::Delete {
                relation: Arc::clone(relation),
                tuple: tuple.clone(),
            },
            Update::Delete { relation, tuple } => Update::Insert {
                relation: Arc::clone(relation),
                tuple: tuple.clone(),
            },
            Update::Modify { relation, old, new } => Update::Modify {
                relation: Arc::clone(relation),
                old: new.clone(),
                new: old.clone(),
            },
        }
    }

    /// Apply this update to an instance.
    ///
    /// Application is *lenient about versions* but strict about presence:
    /// inserting over an existing different version upserts (last-writer
    /// wins — reconciliation has already decided this update should apply);
    /// deleting a missing tuple is a no-op; modifying a missing key inserts
    /// the new version (the antecedent insert may have been translated into
    /// this same reconciliation batch).
    pub fn apply(&self, instance: &mut Instance) -> Result<()> {
        match self {
            Update::Insert { relation, tuple } => {
                instance.upsert(relation, tuple.clone())?;
            }
            Update::Delete { relation, tuple } => {
                instance.delete(relation, tuple)?;
            }
            Update::Modify { relation, new, .. } => {
                instance.upsert(relation, new.clone())?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Insert { relation, tuple } => write!(f, "+{relation}{tuple}"),
            Update::Delete { relation, tuple } => write!(f, "-{relation}{tuple}"),
            Update::Modify { relation, old, new } => {
                write!(f, "~{relation}{old}→{new}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::{tuple, DatabaseSchema, ValueType};

    fn schema() -> RelationSchema {
        RelationSchema::from_parts_keyed(
            "S",
            &[("k", ValueType::Int), ("v", ValueType::Str)],
            &["k"],
        )
        .unwrap()
    }

    fn db() -> DatabaseSchema {
        DatabaseSchema::new("T").with_relation(schema()).unwrap()
    }

    #[test]
    fn accessors() {
        let u = Update::insert("S", tuple![1, "a"]);
        assert_eq!(&**u.relation(), "S");
        assert_eq!(u.read_version(), None);
        assert_eq!(u.written_version(), Some(&tuple![1, "a"]));
        let d = Update::delete("S", tuple![1, "a"]);
        assert_eq!(d.read_version(), Some(&tuple![1, "a"]));
        assert_eq!(d.written_version(), None);
        let m = Update::modify("S", tuple![1, "a"], tuple![1, "b"]);
        assert_eq!(m.read_version(), Some(&tuple![1, "a"]));
        assert_eq!(m.written_version(), Some(&tuple![1, "b"]));
    }

    #[test]
    fn keys_and_outcomes() {
        let s = schema();
        let m = Update::modify("S", tuple![1, "a"], tuple![1, "b"]);
        assert_eq!(m.key(&s), tuple![1]);
        assert_eq!(m.outcome(), WriteOutcome::Present(tuple![1, "b"]));
        let d = Update::delete("S", tuple![1, "a"]);
        assert_eq!(d.outcome(), WriteOutcome::Absent);
        assert_eq!(
            Update::insert("S", tuple![2, "x"]).outcome(),
            WriteOutcome::Present(tuple![2, "x"])
        );
    }

    #[test]
    fn validate_modify_key_change_rejected() {
        let s = schema();
        let bad = Update::modify("S", tuple![1, "a"], tuple![2, "a"]);
        assert!(matches!(
            bad.validate(&s),
            Err(UpdateError::KeyChangedInModify { .. })
        ));
        let good = Update::modify("S", tuple![1, "a"], tuple![1, "b"]);
        assert!(good.validate(&s).is_ok());
    }

    #[test]
    fn validate_checks_tuple_shape() {
        let s = schema();
        assert!(Update::insert("S", tuple![1]).validate(&s).is_err());
        assert!(Update::delete("S", tuple!["x", "y"]).validate(&s).is_err());
    }

    #[test]
    fn inversion_roundtrips() {
        let u = Update::modify("S", tuple![1, "a"], tuple![1, "b"]);
        assert_eq!(u.inverted().inverted(), u);
        assert_eq!(
            Update::insert("S", tuple![1, "a"]).inverted(),
            Update::delete("S", tuple![1, "a"])
        );
    }

    #[test]
    fn apply_insert_delete_modify() {
        let mut inst = Instance::new(db());
        Update::insert("S", tuple![1, "a"])
            .apply(&mut inst)
            .unwrap();
        assert!(inst.relation("S").unwrap().contains(&tuple![1, "a"]));
        Update::modify("S", tuple![1, "a"], tuple![1, "b"])
            .apply(&mut inst)
            .unwrap();
        assert!(inst.relation("S").unwrap().contains(&tuple![1, "b"]));
        Update::delete("S", tuple![1, "b"])
            .apply(&mut inst)
            .unwrap();
        assert!(inst.relation("S").unwrap().is_empty());
    }

    #[test]
    fn apply_is_lenient_about_missing_targets() {
        let mut inst = Instance::new(db());
        // Delete of absent tuple: no-op.
        Update::delete("S", tuple![1, "a"])
            .apply(&mut inst)
            .unwrap();
        // Modify of absent key: materializes new version.
        Update::modify("S", tuple![2, "a"], tuple![2, "b"])
            .apply(&mut inst)
            .unwrap();
        assert!(inst.relation("S").unwrap().contains(&tuple![2, "b"]));
        // Insert over a different version: upsert wins.
        Update::insert("S", tuple![2, "c"])
            .apply(&mut inst)
            .unwrap();
        assert!(inst.relation("S").unwrap().contains(&tuple![2, "c"]));
    }

    #[test]
    fn display() {
        assert_eq!(
            Update::insert("S", tuple![1, "a"]).to_string(),
            "+S(1, 'a')"
        );
        assert_eq!(
            Update::delete("S", tuple![1, "a"]).to_string(),
            "-S(1, 'a')"
        );
        assert_eq!(
            Update::modify("S", tuple![1, "a"], tuple![1, "b"]).to_string(),
            "~S(1, 'a')→(1, 'b')"
        );
    }
}
