//! Transactions: the CDSS unit of propagation.

use crate::clock::Epoch;
use crate::update::{Update, WriteOutcome};
use crate::Result;
use orchestra_relational::{DatabaseSchema, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A peer identifier (the participant's name, e.g. `"Alaska"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(Arc<str>);

impl PeerId {
    /// Build a peer id from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        PeerId(Arc::from(name.as_ref()))
    }

    /// The peer's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PeerId {
    fn from(s: &str) -> Self {
        PeerId::new(s)
    }
}

/// A globally unique transaction id: origin peer plus per-peer sequence
/// number. Ordering is (peer, seq), which is only a *display* order —
/// causality lives in the antecedent sets, not in id order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// The publishing peer.
    pub peer: PeerId,
    /// The peer-local sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Build a transaction id.
    pub fn new(peer: impl Into<PeerId>, seq: u64) -> Self {
        TxnId {
            peer: peer.into(),
            seq,
        }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.peer, self.seq)
    }
}

/// A transaction: an atomic group of updates published by one peer, plus
/// the antecedent transactions its reads depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Globally unique id.
    pub id: TxnId,
    /// The epoch in which the transaction was published.
    pub epoch: Epoch,
    /// Updates in execution order.
    pub updates: Vec<Update>,
    /// Transactions whose writes this transaction's reads/overwrites depend
    /// on. Acceptance of this transaction requires acceptance of all of
    /// them (the paper's antecedent rule).
    pub antecedents: BTreeSet<TxnId>,
}

impl Transaction {
    /// Build a transaction with no antecedents.
    pub fn new(id: TxnId, epoch: Epoch, updates: Vec<Update>) -> Self {
        Transaction {
            id,
            epoch,
            updates,
            antecedents: BTreeSet::new(),
        }
    }

    /// Builder-style antecedent addition.
    pub fn with_antecedents<I: IntoIterator<Item = TxnId>>(mut self, ants: I) -> Self {
        self.antecedents.extend(ants);
        self
    }

    /// Validate every update against the schema.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        for u in &self.updates {
            let rel = schema
                .relation(u.relation())
                .map_err(crate::error::UpdateError::from)?;
            u.validate(rel)?;
        }
        Ok(())
    }

    /// The transaction's *write set*: for each (relation, key) written, the
    /// final outcome after applying the updates in order.
    pub fn write_set(
        &self,
        schema: &DatabaseSchema,
    ) -> Result<BTreeMap<(Arc<str>, Tuple), WriteOutcome>> {
        let mut out: BTreeMap<(Arc<str>, Tuple), WriteOutcome> = BTreeMap::new();
        for u in &self.updates {
            let rel = schema
                .relation(u.relation())
                .map_err(crate::error::UpdateError::from)?;
            let key = u.key(rel);
            out.insert((Arc::clone(u.relation()), key), u.outcome());
        }
        Ok(out)
    }

    /// True iff the two transactions conflict: some (relation, key) is
    /// written by both with *different* final outcomes. Identical writes
    /// (both ending at the same version, or both deleting) are compatible —
    /// this is the paper's "selective disagreement" conflict notion.
    pub fn conflicts_with(&self, other: &Transaction, schema: &DatabaseSchema) -> Result<bool> {
        let a = self.write_set(schema)?;
        let b = other.write_set(schema)?;
        // Iterate the smaller write set.
        let (small, large) = if a.len() <= b.len() {
            (&a, &b)
        } else {
            (&b, &a)
        };
        for (k, outcome) in small {
            if let Some(other_outcome) = large.get(k) {
                if outcome != other_outcome {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True iff the transaction carries no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn {} @{} [", self.id, self.epoch)?;
        for (i, u) in self.updates.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "]")?;
        if !self.antecedents.is_empty() {
            write!(f, " deps{{")?;
            for (i, a) in self.antecedents.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::{tuple, RelationSchema, ValueType};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new("T")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "S",
                    &[("k", ValueType::Int), ("v", ValueType::Str)],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap()
    }

    fn txn(peer: &str, seq: u64, updates: Vec<Update>) -> Transaction {
        Transaction::new(TxnId::new(PeerId::new(peer), seq), Epoch::new(1), updates)
    }

    #[test]
    fn txn_id_display_and_order() {
        let a = TxnId::new(PeerId::new("Alaska"), 1);
        let b = TxnId::new(PeerId::new("Alaska"), 2);
        let c = TxnId::new(PeerId::new("Beijing"), 1);
        assert_eq!(a.to_string(), "Alaska#1");
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn write_set_takes_last_outcome_per_key() {
        let t = txn(
            "A",
            1,
            vec![
                Update::insert("S", tuple![1, "a"]),
                Update::modify("S", tuple![1, "a"], tuple![1, "b"]),
                Update::insert("S", tuple![2, "x"]),
            ],
        );
        let ws = t.write_set(&schema()).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(
            ws[&(Arc::from("S"), tuple![1])],
            WriteOutcome::Present(tuple![1, "b"])
        );
    }

    #[test]
    fn conflicting_writes_detected() {
        let s = schema();
        let t1 = txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]);
        let t2 = txn("B", 1, vec![Update::insert("S", tuple![1, "b"])]);
        assert!(t1.conflicts_with(&t2, &s).unwrap());
        assert!(t2.conflicts_with(&t1, &s).unwrap());
    }

    #[test]
    fn identical_writes_do_not_conflict() {
        let s = schema();
        let t1 = txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]);
        let t2 = txn("B", 1, vec![Update::insert("S", tuple![1, "a"])]);
        assert!(!t1.conflicts_with(&t2, &s).unwrap());
    }

    #[test]
    fn disjoint_keys_do_not_conflict() {
        let s = schema();
        let t1 = txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]);
        let t2 = txn("B", 1, vec![Update::insert("S", tuple![2, "a"])]);
        assert!(!t1.conflicts_with(&t2, &s).unwrap());
    }

    #[test]
    fn delete_vs_modify_conflict() {
        let s = schema();
        let t1 = txn("A", 2, vec![Update::delete("S", tuple![1, "a"])]);
        let t2 = txn(
            "B",
            2,
            vec![Update::modify("S", tuple![1, "a"], tuple![1, "b"])],
        );
        assert!(t1.conflicts_with(&t2, &s).unwrap());
    }

    #[test]
    fn validate_propagates_update_errors() {
        let s = schema();
        let bad = txn("A", 1, vec![Update::insert("S", tuple![1])]);
        assert!(bad.validate(&s).is_err());
        let unknown = txn("A", 1, vec![Update::insert("X", tuple![1, "a"])]);
        assert!(unknown.validate(&s).is_err());
        let ok = txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]);
        assert!(ok.validate(&s).is_ok());
    }

    #[test]
    fn antecedents_builder() {
        let t = txn("A", 2, vec![]).with_antecedents([TxnId::new(PeerId::new("B"), 1)]);
        assert!(t.antecedents.contains(&TxnId::new(PeerId::new("B"), 1)));
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn display_includes_deps() {
        let t = txn("A", 1, vec![Update::insert("S", tuple![1, "a"])])
            .with_antecedents([TxnId::new(PeerId::new("B"), 7)]);
        let s = t.to_string();
        assert!(s.contains("txn A#1"));
        assert!(s.contains("+S(1, 'a')"));
        assert!(s.contains("deps{B#7}"));
    }
}
