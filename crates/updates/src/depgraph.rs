//! The transaction dependency graph.
//!
//! "Data dependencies between operations in different transactions …
//! induce a dependency graph on the transactions themselves that must be
//! respected when considering which transactions to accept or reject." (§2)
//!
//! Reconciliation uses three closures over this graph:
//!
//! * **antecedent closure** — everything a candidate needs accepted first
//!   (builds *applicable transaction groups*),
//! * **dependent closure** — everything that must be rejected when a
//!   transaction is rejected, or deferred when it is deferred,
//! * **topological order** — antecedents before dependents when applying.

use crate::error::UpdateError;
use crate::txn::TxnId;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A DAG over transaction ids. Edges point from a transaction to its
/// antecedents (the transactions it depends on).
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// txn → its antecedents.
    antecedents: BTreeMap<TxnId, BTreeSet<TxnId>>,
    /// txn → transactions that directly depend on it.
    dependents: BTreeMap<TxnId, BTreeSet<TxnId>>,
    /// Nodes created implicitly as forward references; a later real insert
    /// upgrades them instead of erroring as a duplicate.
    placeholders: BTreeSet<TxnId>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Insert a transaction with its antecedent set. Antecedents that have
    /// not (yet) been inserted are recorded as placeholder nodes — the
    /// archive may deliver transactions out of order — and upgraded when
    /// the real transaction arrives.
    pub fn insert(&mut self, id: TxnId, antecedents: BTreeSet<TxnId>) -> Result<()> {
        if self.antecedents.contains_key(&id) && !self.placeholders.remove(&id) {
            return Err(UpdateError::DuplicateTxn(id.to_string()));
        }
        for a in &antecedents {
            if !self.antecedents.contains_key(a) {
                self.antecedents.insert(a.clone(), BTreeSet::new());
                self.placeholders.insert(a.clone());
            }
            self.dependents
                .entry(a.clone())
                .or_default()
                .insert(id.clone());
        }
        self.dependents.entry(id.clone()).or_default();
        self.antecedents.insert(id, antecedents);
        Ok(())
    }

    /// True iff the transaction is only known as a forward reference.
    pub fn is_placeholder(&self, id: &TxnId) -> bool {
        self.placeholders.contains(id)
    }

    /// True iff the transaction is known.
    pub fn contains(&self, id: &TxnId) -> bool {
        self.antecedents.contains_key(id)
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.antecedents.len()
    }

    /// True iff the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.antecedents.is_empty()
    }

    /// Direct antecedents of a transaction.
    pub fn antecedents_of(&self, id: &TxnId) -> Result<&BTreeSet<TxnId>> {
        self.antecedents
            .get(id)
            .ok_or_else(|| UpdateError::UnknownTxn(id.to_string()))
    }

    /// Direct dependents of a transaction.
    pub fn dependents_of(&self, id: &TxnId) -> Result<&BTreeSet<TxnId>> {
        self.dependents
            .get(id)
            .ok_or_else(|| UpdateError::UnknownTxn(id.to_string()))
    }

    /// All transactions the given one transitively depends on, **excluding**
    /// itself, in breadth-first order from the target.
    pub fn antecedent_closure(&self, id: &TxnId) -> Result<BTreeSet<TxnId>> {
        self.closure(id, &self.antecedents)
    }

    /// All transactions that transitively depend on the given one,
    /// **excluding** itself.
    pub fn dependent_closure(&self, id: &TxnId) -> Result<BTreeSet<TxnId>> {
        self.closure(id, &self.dependents)
    }

    fn closure(
        &self,
        id: &TxnId,
        edges: &BTreeMap<TxnId, BTreeSet<TxnId>>,
    ) -> Result<BTreeSet<TxnId>> {
        if !self.antecedents.contains_key(id) {
            return Err(UpdateError::UnknownTxn(id.to_string()));
        }
        let mut seen: BTreeSet<TxnId> = BTreeSet::new();
        let mut queue: VecDeque<&TxnId> = VecDeque::new();
        queue.push_back(id);
        while let Some(cur) = queue.pop_front() {
            if let Some(next) = edges.get(cur) {
                for n in next {
                    if seen.insert(n.clone()) {
                        queue.push_back(n);
                    }
                }
            }
        }
        seen.remove(id);
        Ok(seen)
    }

    /// A topological order with antecedents before dependents. Errors if a
    /// cycle exists (cannot arise from causally well-formed publication, but
    /// the archive is untrusted input).
    pub fn topo_order(&self) -> Result<Vec<TxnId>> {
        let mut in_deg: BTreeMap<&TxnId, usize> = self
            .antecedents
            .iter()
            .map(|(id, ants)| (id, ants.len()))
            .collect();
        let mut ready: VecDeque<&TxnId> = in_deg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::with_capacity(in_deg.len());
        while let Some(id) = ready.pop_front() {
            out.push(id.clone());
            if let Some(deps) = self.dependents.get(id) {
                for d in deps {
                    // analyze: allow(panic) -- dependents edges only reference registered nodes
                    let deg = in_deg.get_mut(d).expect("dependent is a node");
                    *deg -= 1;
                    if *deg == 0 {
                        ready.push_back(d);
                    }
                }
            }
        }
        if out.len() != self.antecedents.len() {
            return Err(UpdateError::Storage(
                "dependency cycle among transactions".to_string(),
            ));
        }
        Ok(out)
    }

    /// Restrict a topological order to a set of transactions (helper for
    /// applying an accepted group in dependency order).
    pub fn topo_order_of(&self, subset: &BTreeSet<TxnId>) -> Result<Vec<TxnId>> {
        Ok(self
            .topo_order()?
            .into_iter()
            .filter(|id| subset.contains(id))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::PeerId;

    fn id(peer: &str, seq: u64) -> TxnId {
        TxnId::new(PeerId::new(peer), seq)
    }

    /// A1 ← A2 ← A3, and B1 ← A3 (A3 depends on both A2 and B1).
    fn chain() -> DepGraph {
        let mut g = DepGraph::new();
        g.insert(id("A", 1), BTreeSet::new()).unwrap();
        g.insert(id("A", 2), BTreeSet::from([id("A", 1)])).unwrap();
        g.insert(id("B", 1), BTreeSet::new()).unwrap();
        g.insert(id("A", 3), BTreeSet::from([id("A", 2), id("B", 1)]))
            .unwrap();
        g
    }

    #[test]
    fn insert_and_lookup() {
        let g = chain();
        assert_eq!(g.len(), 4);
        assert!(g.contains(&id("A", 2)));
        assert!(!g.contains(&id("C", 1)));
        assert_eq!(
            g.antecedents_of(&id("A", 3)).unwrap(),
            &BTreeSet::from([id("A", 2), id("B", 1)])
        );
        assert_eq!(
            g.dependents_of(&id("A", 1)).unwrap(),
            &BTreeSet::from([id("A", 2)])
        );
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut g = chain();
        assert!(matches!(
            g.insert(id("A", 1), BTreeSet::new()),
            Err(UpdateError::DuplicateTxn(_))
        ));
    }

    #[test]
    fn unknown_txn_errors() {
        let g = chain();
        assert!(g.antecedents_of(&id("Z", 9)).is_err());
        assert!(g.antecedent_closure(&id("Z", 9)).is_err());
    }

    #[test]
    fn antecedent_closure_is_transitive() {
        let g = chain();
        assert_eq!(
            g.antecedent_closure(&id("A", 3)).unwrap(),
            BTreeSet::from([id("A", 1), id("A", 2), id("B", 1)])
        );
        assert!(g.antecedent_closure(&id("A", 1)).unwrap().is_empty());
    }

    #[test]
    fn dependent_closure_is_transitive() {
        let g = chain();
        assert_eq!(
            g.dependent_closure(&id("A", 1)).unwrap(),
            BTreeSet::from([id("A", 2), id("A", 3)])
        );
        assert_eq!(
            g.dependent_closure(&id("B", 1)).unwrap(),
            BTreeSet::from([id("A", 3)])
        );
        assert!(g.dependent_closure(&id("A", 3)).unwrap().is_empty());
    }

    #[test]
    fn forward_reference_creates_placeholder() {
        let mut g = DepGraph::new();
        // A2 arrives before its antecedent A1.
        g.insert(id("A", 2), BTreeSet::from([id("A", 1)])).unwrap();
        assert!(g.contains(&id("A", 1)), "placeholder node exists");
        assert!(g.is_placeholder(&id("A", 1)));
        assert!(g.antecedents_of(&id("A", 1)).unwrap().is_empty());
        assert_eq!(
            g.dependent_closure(&id("A", 1)).unwrap(),
            BTreeSet::from([id("A", 2)])
        );
        // The real A1 later arrives and upgrades the placeholder.
        g.insert(id("A", 1), BTreeSet::new()).unwrap();
        assert!(!g.is_placeholder(&id("A", 1)));
        // But inserting it twice for real is still an error.
        assert!(matches!(
            g.insert(id("A", 1), BTreeSet::new()),
            Err(UpdateError::DuplicateTxn(_))
        ));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = chain();
        let order = g.topo_order().unwrap();
        let pos = |t: &TxnId| order.iter().position(|x| x == t).unwrap();
        assert!(pos(&id("A", 1)) < pos(&id("A", 2)));
        assert!(pos(&id("A", 2)) < pos(&id("A", 3)));
        assert!(pos(&id("B", 1)) < pos(&id("A", 3)));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn topo_order_of_subset() {
        let g = chain();
        let subset = BTreeSet::from([id("A", 3), id("A", 1)]);
        let order = g.topo_order_of(&subset).unwrap();
        assert_eq!(order, vec![id("A", 1), id("A", 3)]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = DepGraph::new();
        g.insert(id("A", 1), BTreeSet::from([id("A", 2)])).unwrap();
        g.insert(id("A", 2), BTreeSet::from([id("A", 1)])).unwrap();
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = DepGraph::new();
        assert!(g.is_empty());
        assert!(g.topo_order().unwrap().is_empty());
    }
}
