//! Logical time.
//!
//! "Each update exchange operation advances a logical clock: the overall
//! state of data in the system has changed, and any future updates should
//! be causally related to the previously accepted ones." (§2)

use std::fmt;

/// A logical epoch. Epoch 0 is "before any update exchange".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Epoch(u64);

impl Epoch {
    /// Build an epoch from its counter value.
    pub fn new(value: u64) -> Self {
        Epoch(value)
    }

    /// The initial epoch (no exchanges yet).
    pub fn zero() -> Self {
        Epoch(0)
    }

    /// The raw counter.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The next epoch.
    pub fn next(&self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The system-wide logical clock, advanced once per update exchange.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    current: Epoch,
}

impl LogicalClock {
    /// A clock at epoch 0.
    pub fn new() -> Self {
        LogicalClock {
            current: Epoch::zero(),
        }
    }

    /// The current epoch.
    pub fn current(&self) -> Epoch {
        self.current
    }

    /// Advance and return the new epoch.
    pub fn advance(&mut self) -> Epoch {
        self.current = self.current.next();
        self.current
    }

    /// Merge an epoch observed elsewhere (Lamport-style): the clock never
    /// runs behind epochs already seen. Lets a node rebuilt from an
    /// archive resume publishing without reusing stamped epochs.
    pub fn observe(&mut self, seen: Epoch) {
        self.current = self.current.max(seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_order() {
        assert!(Epoch::zero() < Epoch::new(1));
        assert_eq!(Epoch::new(3).next(), Epoch::new(4));
        assert_eq!(Epoch::new(2).value(), 2);
        assert_eq!(Epoch::new(5).to_string(), "e5");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = LogicalClock::new();
        assert_eq!(c.current(), Epoch::zero());
        let e1 = c.advance();
        let e2 = c.advance();
        assert!(e1 < e2);
        assert_eq!(c.current(), e2);
        assert_eq!(e2.value(), 2);
    }
}
