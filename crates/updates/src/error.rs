//! Errors for the update/transaction layer.

use std::fmt;

/// Errors raised while constructing or applying updates and transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// A `Modify` whose old and new tuples disagree on the key columns —
    /// key changes must be expressed as delete + insert.
    KeyChangedInModify { relation: String },
    /// The update refers to a relation absent from the schema.
    UnknownRelation(String),
    /// Applying an update failed at the storage layer.
    Storage(String),
    /// A transaction was declared with a duplicate id.
    DuplicateTxn(String),
    /// A dependency edge refers to a transaction that was never recorded.
    UnknownTxn(String),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::KeyChangedInModify { relation } => write!(
                f,
                "modify in `{relation}` changes key columns; use delete+insert"
            ),
            UpdateError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            UpdateError::Storage(msg) => write!(f, "storage error: {msg}"),
            UpdateError::DuplicateTxn(id) => write!(f, "duplicate transaction `{id}`"),
            UpdateError::UnknownTxn(id) => write!(f, "unknown transaction `{id}`"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<orchestra_relational::RelationalError> for UpdateError {
    fn from(e: orchestra_relational::RelationalError) -> Self {
        UpdateError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(UpdateError::KeyChangedInModify {
            relation: "R".into()
        }
        .to_string()
        .contains("changes key columns"));
        assert!(UpdateError::UnknownRelation("R".into())
            .to_string()
            .contains("unknown relation"));
        assert!(UpdateError::DuplicateTxn("t".into())
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn converts_relational_errors() {
        let e: UpdateError =
            orchestra_relational::RelationalError::UnknownRelation("R".into()).into();
        assert!(matches!(e, UpdateError::Storage(_)));
    }
}
