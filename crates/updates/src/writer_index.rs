//! Deriving antecedents: who last wrote each key?
//!
//! When a peer publishes a transaction that modifies or deletes a tuple,
//! that transaction *depends on* the transaction that produced the tuple's
//! current version. The [`WriterIndex`] tracks, per (relation, key), the
//! last writing transaction, so publication can stamp antecedent sets
//! without scanning history.

use crate::txn::{Transaction, TxnId};
use crate::update::Update;
use crate::Result;
use orchestra_relational::{DatabaseSchema, Tuple};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Tracks the last writer of every (relation, key) pair.
#[derive(Debug, Clone, Default)]
pub struct WriterIndex {
    last_writer: HashMap<(Arc<str>, Tuple), TxnId>,
}

impl WriterIndex {
    /// An empty index.
    pub fn new() -> Self {
        WriterIndex::default()
    }

    /// The last transaction that wrote this key, if any.
    pub fn last_writer(&self, relation: &str, key: &Tuple) -> Option<&TxnId> {
        // Avoid allocating an Arc for the probe by scanning on miss-prone
        // path only if needed; HashMap requires the exact key type, so we
        // build the probe key once.
        self.last_writer.get(&(Arc::from(relation), key.clone()))
    }

    /// Compute the antecedent set for a list of updates: the distinct last
    /// writers of every key the updates *read* (delete/modify). Inserts of
    /// fresh keys contribute nothing.
    pub fn antecedents_for(
        &self,
        schema: &DatabaseSchema,
        updates: &[Update],
    ) -> Result<BTreeSet<TxnId>> {
        let mut out = BTreeSet::new();
        for u in updates {
            if u.read_version().is_none() {
                continue;
            }
            let rel = schema
                .relation(u.relation())
                .map_err(crate::error::UpdateError::from)?;
            let key = u.key(rel);
            if let Some(w) = self.last_writer.get(&(Arc::clone(u.relation()), key)) {
                out.insert(w.clone());
            }
        }
        Ok(out)
    }

    /// Record a transaction's writes as the new last-writers.
    pub fn record(&mut self, schema: &DatabaseSchema, txn: &Transaction) -> Result<()> {
        for u in &txn.updates {
            let rel = schema
                .relation(u.relation())
                .map_err(crate::error::UpdateError::from)?;
            let key = u.key(rel);
            self.last_writer
                .insert((Arc::clone(u.relation()), key), txn.id.clone());
        }
        Ok(())
    }

    /// Convenience: compute antecedents for `updates`, then record the
    /// resulting transaction. Returns the transaction with its antecedent
    /// set stamped.
    pub fn stamp_and_record(
        &mut self,
        schema: &DatabaseSchema,
        mut txn: Transaction,
    ) -> Result<Transaction> {
        let ants = self.antecedents_for(schema, &txn.updates)?;
        // A transaction never depends on itself (a modify following an
        // insert of the same key inside one transaction).
        txn.antecedents
            .extend(ants.into_iter().filter(|a| *a != txn.id));
        self.record(schema, &txn)?;
        Ok(txn)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.last_writer.len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.last_writer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Epoch;
    use crate::txn::PeerId;
    use orchestra_relational::{tuple, RelationSchema, ValueType};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new("T")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "S",
                    &[("k", ValueType::Int), ("v", ValueType::Str)],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap()
    }

    fn txn(peer: &str, seq: u64, updates: Vec<Update>) -> Transaction {
        Transaction::new(TxnId::new(PeerId::new(peer), seq), Epoch::new(1), updates)
    }

    #[test]
    fn insert_then_modify_creates_dependency() {
        let s = schema();
        let mut idx = WriterIndex::new();
        let t1 = idx
            .stamp_and_record(&s, txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]))
            .unwrap();
        assert!(t1.antecedents.is_empty(), "fresh insert has no deps");

        let t2 = idx
            .stamp_and_record(
                &s,
                txn(
                    "B",
                    1,
                    vec![Update::modify("S", tuple![1, "a"], tuple![1, "b"])],
                ),
            )
            .unwrap();
        assert_eq!(t2.antecedents, BTreeSet::from([t1.id.clone()]));
    }

    #[test]
    fn delete_depends_on_last_writer() {
        let s = schema();
        let mut idx = WriterIndex::new();
        let t1 = idx
            .stamp_and_record(&s, txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]))
            .unwrap();
        let t2 = idx
            .stamp_and_record(&s, txn("B", 1, vec![Update::delete("S", tuple![1, "a"])]))
            .unwrap();
        assert_eq!(t2.antecedents, BTreeSet::from([t1.id]));
    }

    #[test]
    fn chain_of_modifies_tracks_latest_writer_only() {
        let s = schema();
        let mut idx = WriterIndex::new();
        let t1 = idx
            .stamp_and_record(&s, txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]))
            .unwrap();
        let t2 = idx
            .stamp_and_record(
                &s,
                txn(
                    "B",
                    1,
                    vec![Update::modify("S", tuple![1, "a"], tuple![1, "b"])],
                ),
            )
            .unwrap();
        let t3 = idx
            .stamp_and_record(
                &s,
                txn(
                    "C",
                    1,
                    vec![Update::modify("S", tuple![1, "b"], tuple![1, "c"])],
                ),
            )
            .unwrap();
        assert_eq!(t2.antecedents, BTreeSet::from([t1.id]));
        assert_eq!(
            t3.antecedents,
            BTreeSet::from([t2.id]),
            "latest writer only"
        );
    }

    #[test]
    fn intra_txn_self_dependency_suppressed() {
        let s = schema();
        let mut idx = WriterIndex::new();
        // Insert and modify the same key within one transaction.
        let t = idx
            .stamp_and_record(
                &s,
                txn(
                    "A",
                    1,
                    vec![
                        Update::insert("S", tuple![1, "a"]),
                        Update::modify("S", tuple![1, "a"], tuple![1, "b"]),
                    ],
                ),
            )
            .unwrap();
        assert!(t.antecedents.is_empty());
    }

    #[test]
    fn independent_keys_no_dependency() {
        let s = schema();
        let mut idx = WriterIndex::new();
        idx.stamp_and_record(&s, txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]))
            .unwrap();
        let t2 = idx
            .stamp_and_record(&s, txn("B", 1, vec![Update::insert("S", tuple![2, "b"])]))
            .unwrap();
        assert!(t2.antecedents.is_empty());
    }

    #[test]
    fn multi_key_reads_union_antecedents() {
        let s = schema();
        let mut idx = WriterIndex::new();
        let t1 = idx
            .stamp_and_record(&s, txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]))
            .unwrap();
        let t2 = idx
            .stamp_and_record(&s, txn("B", 1, vec![Update::insert("S", tuple![2, "b"])]))
            .unwrap();
        let t3 = idx
            .stamp_and_record(
                &s,
                txn(
                    "C",
                    1,
                    vec![
                        Update::delete("S", tuple![1, "a"]),
                        Update::delete("S", tuple![2, "b"]),
                    ],
                ),
            )
            .unwrap();
        assert_eq!(t3.antecedents, BTreeSet::from([t1.id, t2.id]));
    }

    #[test]
    fn last_writer_lookup_and_len() {
        let s = schema();
        let mut idx = WriterIndex::new();
        assert!(idx.is_empty());
        let t1 = idx
            .stamp_and_record(&s, txn("A", 1, vec![Update::insert("S", tuple![1, "a"])]))
            .unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.last_writer("S", &tuple![1]), Some(&t1.id));
        assert_eq!(idx.last_writer("S", &tuple![9]), None);
    }
}
