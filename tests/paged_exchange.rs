//! The paged, partial-progress update exchange: bounded pages, gaps that
//! stall *at the gap* instead of failing the exchange, held-back causal
//! dependents, cursor resume after a dead holder returns, and the
//! no-work-no-epoch rule.

use orchestra_core::{Cdss, ExchangeOptions};
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_store::{ReplicatedStore, UpdateStore};
use orchestra_updates::{Epoch, PeerId, TxnId, Update};
use std::sync::Arc;

/// Forwarding wrapper (keeps a handle for churn control).
struct Shared(Arc<ReplicatedStore>);

impl UpdateStore for Shared {
    fn publish(
        &self,
        epoch: Epoch,
        txns: Vec<orchestra_updates::Transaction>,
    ) -> orchestra_store::Result<()> {
        self.0.publish(epoch, txns)
    }
    fn fetch_page(
        &self,
        cursor: &orchestra_store::FetchCursor,
        limit: usize,
    ) -> orchestra_store::Result<orchestra_store::FetchPage> {
        self.0.fetch_page(cursor, limit)
    }
    fn fetch(&self, id: &TxnId) -> orchestra_store::Result<Option<orchestra_updates::Transaction>> {
        self.0.fetch(id)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn latest_epoch(&self) -> Option<Epoch> {
        self.0.latest_epoch()
    }
    fn stats(&self) -> orchestra_store::StoreStats {
        self.0.stats()
    }
}

/// Two peers sharing a keyed schema through identity mappings: whatever A
/// publishes should end up mirrored at B.
fn kv_cdss(store: Box<dyn UpdateStore>) -> Cdss {
    let schema = DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
    Cdss::builder()
        .peer("A", schema.clone(), TrustPolicy::open(1))
        .peer("B", schema, TrustPolicy::open(1))
        .identity("A", "B")
        .unwrap()
        .build_with_store(store)
        .unwrap()
}

/// The churn scenario the old `fetch_since` contract could not survive:
/// one dead payload in the middle of the history. The peer now makes
/// partial progress past the reachable prefix *and* reachable later
/// epochs, holds back only the gap's causal dependents, and resumes
/// cleanly from the frozen cursor once the holder returns.
#[test]
fn peer_makes_partial_progress_past_a_dead_payload_and_resumes() {
    let dht = Arc::new(ReplicatedStore::new(64, 1).unwrap());
    let mut cdss = kv_cdss(Box::new(Shared(Arc::clone(&dht))));
    let (a, b) = (PeerId::new("A"), PeerId::new("B"));

    let _t1 = cdss
        .publish_transaction(&a, vec![Update::insert("R", tuple![1, 10])])
        .unwrap();
    let _t2 = cdss
        .publish_transaction(&a, vec![Update::insert("R", tuple![2, 20])])
        .unwrap();
    let t3 = cdss
        .publish_transaction(&a, vec![Update::insert("R", tuple![3, 30])])
        .unwrap();
    // t4 modifies the row t3 created: its antecedent set contains t3.
    let t4 = cdss
        .publish_transaction(&a, vec![Update::modify("R", tuple![3, 30], tuple![3, 31])])
        .unwrap();
    let _t5 = cdss
        .publish_transaction(&a, vec![Update::insert("R", tuple![5, 50])])
        .unwrap();
    let stored_t4 = cdss.store().fetch(&t4).unwrap().unwrap();
    assert!(
        stored_t4.antecedents.contains(&t3),
        "precondition: t4 causally depends on t3"
    );

    // Kill exactly t3's holder (R=1: one holder per payload). The 64-node
    // ring plus deterministic FNV placement keeps the other four payloads
    // on other nodes; the precondition pins that.
    let victim = dht.holders(&t3).unwrap()[0];
    for other in [&_t1, &_t2, &t4, &_t5] {
        assert_ne!(
            dht.holders(other).unwrap()[0],
            victim,
            "precondition: only t3 lives on the victim node"
        );
    }
    dht.take_node_down(victim);

    // B reconciles: no error, reachable history applies, the gap blocks.
    let report = cdss.reconcile(&b).unwrap();
    assert_eq!(report.blocked_on, Some(t3.clone()), "gap identified");
    assert_eq!(report.skipped_unavailable, 1);
    assert_eq!(report.held_back, 1, "t4 held back behind the gap");
    assert_eq!(report.fetched, 4, "t1, t2, t4, t5 reachable");
    assert_eq!(report.outcome.accepted.len(), 3, "t1, t2, t5 applied");
    {
        let r = cdss.peer(&b).unwrap().instance().relation("R").unwrap();
        assert!(r.contains(&tuple![1, 10]));
        assert!(r.contains(&tuple![2, 20]));
        assert!(r.contains(&tuple![5, 50]));
        assert!(
            !r.iter().any(|t| t[0] == tuple![3, 0][0]),
            "no row for key 3"
        );
    }
    let frozen = cdss.peer(&b).unwrap().resume_cursor().cloned();
    assert!(frozen.is_some(), "cursor frozen at the gap");

    // Retrying while the holder is still dead: same block, no re-cloning
    // of the already-scanned suffix (the poll probes the gap and checks
    // for new history only), no epoch burned.
    let epoch_before = cdss.current_epoch();
    let retry = cdss.reconcile(&b).unwrap();
    assert_eq!(retry.blocked_on, Some(t3.clone()));
    assert_eq!(
        retry.fetched, 0,
        "blocked poll probes the gap + new history only — no suffix rescan"
    );
    assert_eq!(retry.outcome.accepted.len(), 0);
    assert_eq!(cdss.current_epoch(), epoch_before, "no epoch inflation");
    assert_eq!(
        cdss.peer(&b).unwrap().resume_cursor().cloned(),
        frozen,
        "cursor unchanged while blocked"
    );

    // History published *during* the outage still flows while blocked —
    // unless it depends on held work. t6 is independent; t7 modifies the
    // held row, so it must wait with t4.
    let _t6 = cdss
        .publish_transaction(&a, vec![Update::insert("R", tuple![6, 60])])
        .unwrap();
    let _t7 = cdss
        .publish_transaction(&a, vec![Update::modify("R", tuple![3, 31], tuple![3, 32])])
        .unwrap();
    let blocked_flow = cdss.reconcile(&b).unwrap();
    assert_eq!(blocked_flow.blocked_on, Some(t3.clone()));
    assert_eq!(blocked_flow.outcome.accepted.len(), 1, "t6 applies");
    assert_eq!(blocked_flow.held_back, 1, "t7 waits behind the gap");
    assert!(cdss
        .peer(&b)
        .unwrap()
        .instance()
        .relation("R")
        .unwrap()
        .contains(&tuple![6, 60]));

    // The holder returns: the next exchange resumes at the frozen cursor
    // and drains the gap plus its held-back dependents, converging on A.
    dht.bring_node_up(victim);
    let report = cdss.reconcile(&b).unwrap();
    assert_eq!(report.blocked_on, None);
    assert_eq!(report.skipped_unavailable, 0);
    assert_eq!(report.outcome.accepted.len(), 3, "t3, t4, t7 arrive");
    assert!(cdss.peer(&b).unwrap().resume_cursor().is_none());
    assert_eq!(
        cdss.peer(&b).unwrap().instance().relation("R").unwrap(),
        cdss.peer(&a).unwrap().instance().relation("R").unwrap(),
        "B converged on A's instance, including the modified row (3, 31)"
    );
}

/// Idle reconcile loops used to burn one epoch per peer per call,
/// inflating epoch-indexed state unboundedly. Now the clock only moves
/// when an exchange does work.
#[test]
fn idle_reconcile_loops_do_not_inflate_epochs() {
    let mut cdss = kv_cdss(Box::new(orchestra_store::InMemoryStore::new()));
    let (a, b) = (PeerId::new("A"), PeerId::new("B"));
    cdss.publish_transaction(&a, vec![Update::insert("R", tuple![1, 10])])
        .unwrap();
    cdss.reconcile_all().unwrap();
    let settled = cdss.current_epoch();
    for _ in 0..25 {
        let reports = cdss.reconcile_all().unwrap();
        for (_, r) in &reports {
            assert_eq!(r.fetched, 0);
            assert_eq!(r.candidates, 0);
        }
    }
    assert_eq!(
        cdss.current_epoch(),
        settled,
        "25 idle polling rounds moved the clock"
    );
    // A real exchange still advances it.
    cdss.publish_transaction(&a, vec![Update::insert("R", tuple![2, 20])])
        .unwrap();
    let report = cdss.reconcile(&b).unwrap();
    assert!(report.epoch > settled);
    assert!(cdss.current_epoch() > settled);
}

/// The conflict-detection window is the page, by design: same-priority
/// conflicting claims observed in one page (the steady-state case — any
/// exchange of up to `page_limit` transactions) defer both for the
/// administrator, exactly as before. Claims split across pages of one
/// long catch-up behave like claims split across separate exchanges
/// always have: the earlier one is accepted into history, the later one
/// rejected as conflicting with it. Accumulating candidates across pages
/// would restore the whole-catch-up window but reintroduce the O(history)
/// memory the paged exchange exists to eliminate.
#[test]
fn conflict_window_is_the_page() {
    let schema = DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
    let make = || {
        let mut cdss = Cdss::builder()
            .peer("A", schema.clone(), TrustPolicy::open(1))
            .peer("B", schema.clone(), TrustPolicy::open(1))
            .peer("C", schema.clone(), TrustPolicy::open(1))
            .identity("A", "B")
            .unwrap()
            .identity("C", "B")
            .unwrap()
            .build()
            .unwrap();
        // A and C concurrently claim key 9 with different values.
        let ta = cdss
            .publish_transaction(&PeerId::new("A"), vec![Update::insert("R", tuple![9, 1])])
            .unwrap();
        let tc = cdss
            .publish_transaction(&PeerId::new("C"), vec![Update::insert("R", tuple![9, 2])])
            .unwrap();
        (cdss, ta, tc)
    };
    let b = PeerId::new("B");

    // Both claims inside one page: deferred for the administrator (§3).
    let (mut cdss, ta, tc) = make();
    let r = cdss.reconcile(&b).unwrap();
    assert!(r.outcome.deferred.contains(&ta) && r.outcome.deferred.contains(&tc));
    assert!(r.outcome.accepted.is_empty() && r.outcome.rejected.is_empty());

    // Split across pages: streaming semantics — first in (epoch, id)
    // order wins, the later claim is rejected against accepted history,
    // deterministically.
    let (mut cdss, ta, tc) = make();
    let r = cdss
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 1,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(r.outcome.accepted, vec![ta]);
    assert_eq!(r.outcome.rejected, vec![tc]);
    assert!(r.outcome.deferred.is_empty());
}

/// The exchange never materializes more than one page of history: a peer
/// catching up on N **conflict-free** transactions with page limit L
/// scans ceil(N/L) pages, and the result is identical to a one-page
/// exchange (conflicting histories have a page-sized conflict window —
/// see [`conflict_window_is_the_page`]).
#[test]
fn exchange_is_paged_and_page_size_invariant() {
    let make = || {
        let mut cdss = kv_cdss(Box::new(orchestra_store::InMemoryStore::new()));
        let a = PeerId::new("A");
        for i in 0..10i64 {
            cdss.publish_transaction(&a, vec![Update::insert("R", tuple![i, i * 10])])
                .unwrap();
        }
        cdss
    };
    let b = PeerId::new("B");

    let mut paged = make();
    let report = paged
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 3,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(report.pages, 4, "10 txns / limit 3 → 4 pages");
    assert_eq!(report.fetched, 10);
    assert_eq!(report.outcome.accepted.len(), 10);

    let mut one_shot = make();
    one_shot.reconcile(&b).unwrap();
    assert_eq!(
        paged.peer(&b).unwrap().instance().relation("R").unwrap(),
        one_shot.peer(&b).unwrap().instance().relation("R").unwrap(),
        "page size does not change the outcome"
    );

    // Caught up: the next paged exchange scans a single empty page.
    let idle = paged
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 3,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(idle.pages, 1);
    assert_eq!(idle.fetched, 0);
}

/// Archive rebuild with the peer's own transaction stuck behind (or in)
/// the gap: the rebuilt peer must never reuse an archived id. Before the
/// fix, `next_seq` was only restored from own transactions that were
/// reachable *and* consumable, so the next publish collided with the
/// archive (`DuplicateTxn`) after already mutating the local instance.
#[test]
fn rebuilt_peer_never_reuses_ids_archived_behind_a_gap() {
    let dht = Arc::new(ReplicatedStore::new(64, 1).unwrap());
    let shared = |d: &Arc<ReplicatedStore>| Box::new(Shared(Arc::clone(d)));

    // First lifetime: A publishes t1..t3, where t3 modifies t2's row (so
    // t3 causally depends on t2).
    let a = PeerId::new("A");
    let (t2, t3) = {
        let mut cdss = kv_cdss(shared(&dht));
        cdss.publish_transaction(&a, vec![Update::insert("R", tuple![1, 10])])
            .unwrap();
        let t2 = cdss
            .publish_transaction(&a, vec![Update::insert("R", tuple![2, 20])])
            .unwrap();
        let t3 = cdss
            .publish_transaction(&a, vec![Update::modify("R", tuple![2, 20], tuple![2, 21])])
            .unwrap();
        (t2, t3)
        // cdss dropped: A "loses" its local state; the archive survives.
    };

    // t2's payload becomes unreachable; t3 is reachable but depends on it.
    let victim = dht.holders(&t2).unwrap()[0];
    assert_ne!(dht.holders(&t3).unwrap()[0], victim, "precondition");
    dht.take_node_down(victim);

    // Second lifetime: A rebuilds from the archive while blocked.
    let mut cdss = kv_cdss(shared(&dht));
    let report = cdss.reconcile(&a).unwrap();
    assert_eq!(report.blocked_on, Some(t2.clone()));
    assert_eq!(report.held_back, 1, "own t3 held behind the gap");

    // The next publish must mint a fresh id (A#4), not collide with the
    // archived A#2/A#3.
    let t4 = cdss
        .publish_transaction(&a, vec![Update::insert("R", tuple![9, 90])])
        .unwrap();
    assert_eq!(t4.seq, 4, "archived ids are burned even while unreachable");

    // After the holder returns, the rebuild completes and the gap's
    // history lands alongside the new publish.
    dht.bring_node_up(victim);
    cdss.reconcile(&a).unwrap();
    let r = cdss.peer(&a).unwrap().instance().relation("R").unwrap();
    assert!(r.contains(&tuple![1, 10]));
    assert!(r.contains(&tuple![2, 21]), "t2+t3 restored after heal");
    assert!(r.contains(&tuple![9, 90]));
}

/// A direct store publisher (unlike the CDSS clock) may interleave peers
/// within one epoch, so a transaction can sort *before* its same-epoch
/// antecedent. When a page boundary splits such a pair, the dependent is
/// parked and retried with the next page instead of being fed to the
/// reconciler early (which would record a sticky deferral and silently
/// drop it). Genuinely ghost antecedents still defer, as always.
#[test]
fn forward_reference_across_page_boundary_is_not_lost() {
    // Seed the archive directly: epoch 1 holds C#1 and A#1, where A#1
    // depends on C#1 but "A" sorts before "C" in scan order.
    let store = orchestra_store::InMemoryStore::new();
    let tc = orchestra_updates::Transaction::new(
        TxnId::new(PeerId::new("C"), 1),
        Epoch::new(1),
        vec![Update::insert("R", tuple![1, 10])],
    );
    let ta = orchestra_updates::Transaction::new(
        TxnId::new(PeerId::new("A"), 1),
        Epoch::new(1),
        vec![Update::insert("R", tuple![2, 20])],
    )
    .with_antecedents([tc.id.clone()]);
    // A ghost-antecedent transaction defers forever, exactly as before.
    let tg = orchestra_updates::Transaction::new(
        TxnId::new(PeerId::new("A"), 2),
        Epoch::new(2),
        vec![Update::insert("R", tuple![3, 30])],
    )
    .with_antecedents([TxnId::new(PeerId::new("Ghost"), 9)]);
    store
        .publish(Epoch::new(1), vec![tc.clone(), ta.clone()])
        .unwrap();
    store.publish(Epoch::new(2), vec![tg.clone()]).unwrap();

    let schema = DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
    let mut cdss = Cdss::builder()
        .peer("A", schema.clone(), TrustPolicy::open(1))
        .peer("B", schema.clone(), TrustPolicy::open(1))
        .peer("C", schema, TrustPolicy::open(1))
        .identity("A", "B")
        .unwrap()
        .identity("C", "B")
        .unwrap()
        .build_with_store(Box::new(store))
        .unwrap();

    // page_limit 1 puts A#1 (the dependent) on its own page before C#1.
    let b = PeerId::new("B");
    let report = cdss
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 1,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(
        report.outcome.accepted.contains(&ta.id) && report.outcome.accepted.contains(&tc.id),
        "forward reference resolved within the exchange: {:?}",
        report.outcome
    );
    assert_eq!(report.outcome.deferred, vec![tg.id.clone()], "ghost defers");
    let r = cdss.peer(&b).unwrap().instance().relation("R").unwrap();
    assert!(r.contains(&tuple![1, 10]) && r.contains(&tuple![2, 20]));
    assert!(!r.contains(&tuple![3, 30]), "ghost's dependent not applied");
}
