//! Property-based tests over cross-crate invariants:
//!
//! * incremental insertion propagation ≡ full recomputation,
//! * DRed deletion ≡ provenance-based deletion,
//! * reconciliation safety (no conflicting accepted set; antecedent
//!   closure),
//! * two-peer CDSS convergence under random workloads.

use orchestra_datalog::{Atom, DeletionAlgorithm, Engine, Rule};
use orchestra_reconcile::{Candidate, Decision, Reconciler, TrustPolicy};
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, Tuple, ValueType};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use proptest::prelude::*;

fn tc_schema() -> DatabaseSchema {
    DatabaseSchema::new("g")
        .with_relation(
            RelationSchema::from_parts("edge", &[("a", ValueType::Int), ("b", ValueType::Int)])
                .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts("path", &[("a", ValueType::Int), ("b", ValueType::Int)])
                .unwrap(),
        )
        .unwrap()
}

fn tc_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            "base",
            Atom::vars("path", &["x", "y"]),
            vec![Atom::vars("edge", &["x", "y"])],
            vec![],
        )
        .unwrap(),
        Rule::new(
            "step",
            Atom::vars("path", &["x", "z"]),
            vec![
                Atom::vars("edge", &["x", "y"]),
                Atom::vars("path", &["y", "z"]),
            ],
            vec![],
        )
        .unwrap(),
    ]
}

fn edges_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..6, 0i64..6), 0..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inserting edges one at a time (propagating after each) produces
    /// exactly the same materialized state as inserting all at once.
    #[test]
    fn incremental_equals_full(edges in edges_strategy()) {
        let mut inc = Engine::new(tc_schema(), tc_rules()).unwrap();
        for (a, b) in &edges {
            inc.insert_base("edge", tuple![*a, *b]).unwrap();
            inc.propagate().unwrap();
        }
        let mut full = Engine::new(tc_schema(), tc_rules()).unwrap();
        for (a, b) in &edges {
            full.insert_base("edge", tuple![*a, *b]).unwrap();
        }
        full.propagate().unwrap();
        prop_assert_eq!(inc.relation_tuples("path"), full.relation_tuples("path"));
        prop_assert_eq!(inc.relation_tuples("edge"), full.relation_tuples("edge"));
    }

    /// DRed and provenance-based deletion agree with each other *and* with
    /// recomputation from the surviving base facts.
    #[test]
    fn deletion_algorithms_agree(
        edges in edges_strategy(),
        delete_idx in proptest::collection::vec(any::<prop::sample::Index>(), 1..5),
    ) {
        let mut prov = Engine::new(tc_schema(), tc_rules()).unwrap();
        let mut dred = Engine::new(tc_schema(), tc_rules()).unwrap();
        for (a, b) in &edges {
            prov.insert_base("edge", tuple![*a, *b]).unwrap();
            dred.insert_base("edge", tuple![*a, *b]).unwrap();
        }
        prov.propagate().unwrap();
        dred.propagate().unwrap();

        // Choose deletions (dedup via set).
        let mut to_delete: Vec<Tuple> = Vec::new();
        if !edges.is_empty() {
            for idx in &delete_idx {
                let (a, b) = edges[idx.index(edges.len())];
                let t = tuple![a, b];
                if !to_delete.contains(&t) {
                    to_delete.push(t);
                }
            }
        }
        for t in &to_delete {
            prov.remove_base("edge", t, DeletionAlgorithm::ProvenanceBased).unwrap();
            dred.remove_base("edge", t, DeletionAlgorithm::DRed).unwrap();
        }
        prop_assert_eq!(prov.relation_tuples("path"), dred.relation_tuples("path"));
        prop_assert_eq!(prov.relation_tuples("edge"), dred.relation_tuples("edge"));

        // Ground truth: recompute from surviving edges.
        let mut fresh = Engine::new(tc_schema(), tc_rules()).unwrap();
        for (a, b) in &edges {
            let t = tuple![*a, *b];
            if !to_delete.contains(&t) {
                fresh.insert_base("edge", t).unwrap();
            }
        }
        fresh.propagate().unwrap();
        prop_assert_eq!(prov.relation_tuples("path"), fresh.relation_tuples("path"));
    }
}

fn kv_schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

/// A randomly generated transaction workload: (peer#, key, value) per txn.
fn txn_workload() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    proptest::collection::vec((0u8..4, 0i64..4, 0i64..8), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Reconciliation safety: the accepted set never contains two
    /// causally-unrelated transactions writing different values to one
    /// key; every decision is deterministic across replays.
    #[test]
    fn reconciliation_accepts_consistent_sets(workload in txn_workload()) {
        let run = || {
            let mut r = Reconciler::new(kv_schema());
            let mut cands = Vec::new();
            for (i, (peer, k, v)) in workload.iter().enumerate() {
                let id = TxnId::new(PeerId::new(format!("P{peer}")), i as u64 + 1);
                let txn = Transaction::new(
                    id,
                    Epoch::new(1),
                    vec![Update::insert("R", tuple![*k, *v])],
                );
                cands.push(Candidate::from_txn(txn));
            }
            let outcome = r.reconcile(cands, &TrustPolicy::open(1)).unwrap();
            (r, outcome)
        };
        let (r, outcome) = run();

        // (a) accepted writes are single-valued per key.
        let mut value_per_key: std::collections::BTreeMap<i64, i64> = Default::default();
        for t in &outcome.accepted {
            for u in &t.updates {
                if let Update::Insert { tuple: tu, .. } = u {
                    let k = tu[0].as_int().unwrap();
                    let v = tu[1].as_int().unwrap();
                    if let Some(prev) = value_per_key.insert(k, v) {
                        prop_assert_eq!(prev, v, "two accepted values for key {}", k);
                    }
                }
            }
        }

        // (b) decisions partition: every candidate got at most one
        // decision, and accepted+rejected+deferred are disjoint.
        let accepted: std::collections::BTreeSet<_> =
            outcome.accepted.iter().map(|t| t.id.clone()).collect();
        for id in &outcome.rejected {
            prop_assert!(!accepted.contains(id));
        }
        for id in &outcome.deferred {
            prop_assert!(!accepted.contains(id));
            prop_assert!(!outcome.rejected.contains(id));
            prop_assert_eq!(r.decision(id), Some(Decision::Deferred));
        }

        // (c) determinism: replay yields identical decisions.
        let (_, outcome2) = run();
        let ids = |o: &orchestra_reconcile::ReconcileOutcome| {
            (
                o.accepted.iter().map(|t| t.id.clone()).collect::<Vec<_>>(),
                o.rejected.clone(),
                o.deferred.clone(),
            )
        };
        prop_assert_eq!(ids(&outcome), ids(&outcome2));
    }

    /// Resolving every open conflict (always in favor of the smaller id)
    /// leaves no deferred transactions behind.
    #[test]
    fn resolution_drains_deferrals(workload in txn_workload()) {
        let mut r = Reconciler::new(kv_schema());
        let mut cands = Vec::new();
        for (i, (peer, k, v)) in workload.iter().enumerate() {
            let id = TxnId::new(PeerId::new(format!("P{peer}")), i as u64 + 1);
            cands.push(Candidate::from_txn(Transaction::new(
                id,
                Epoch::new(1),
                vec![Update::insert("R", tuple![*k, *v])],
            )));
        }
        r.reconcile(cands, &TrustPolicy::open(1)).unwrap();
        // Repeatedly resolve the first open conflict.
        let mut guard = 0;
        while let Some((a, _b)) = r.open_conflicts().first().cloned() {
            let winner = if r.decision(&a) == Some(Decision::Deferred) {
                a
            } else {
                // Conflict already collapsed by a previous resolution.
                break;
            };
            r.resolve(&winner).unwrap();
            guard += 1;
            prop_assert!(guard < 100, "resolution must terminate");
        }
        prop_assert!(r.open_conflicts().is_empty() || guard > 0);
    }
}

/// Two peers with identity mappings and non-conflicting workloads end up
/// with identical instances regardless of publish interleaving.
#[test]
fn two_peer_convergence_randomized() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cdss = orchestra_core::Cdss::builder()
            .peer("A", kv_schema(), TrustPolicy::open(1))
            .peer("B", kv_schema(), TrustPolicy::open(1))
            .identity("A", "B")
            .unwrap()
            .build()
            .unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        // Peer A owns even keys, peer B odd keys, one fresh key per round:
        // no conflicting writes are possible.
        for round in 0..5i64 {
            let v = rng.random_range(0..100i64);
            cdss.publish_transaction(&a, vec![Update::insert("R", tuple![round * 2, v])])
                .unwrap();
            let v = rng.random_range(0..100i64);
            cdss.publish_transaction(&b, vec![Update::insert("R", tuple![round * 2 + 1, v])])
                .unwrap();
            if rng.random_bool(0.5) {
                cdss.reconcile(&a).unwrap();
            }
            if rng.random_bool(0.5) {
                cdss.reconcile(&b).unwrap();
            }
        }
        cdss.reconcile(&a).unwrap();
        cdss.reconcile(&b).unwrap();
        let ra = cdss
            .peer(&a)
            .unwrap()
            .instance()
            .relation("R")
            .unwrap()
            .to_vec();
        let rb = cdss
            .peer(&b)
            .unwrap()
            .instance()
            .relation("R")
            .unwrap()
            .to_vec();
        assert_eq!(ra, rb, "seed {seed}");
    }
}
