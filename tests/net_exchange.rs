//! Networked update exchange: two CDSS sites in separate OS threads (and,
//! via the bench `--bind`/`--connect` flags, separate processes) sharing
//! one archive over TCP loopback through `PeerServer`/`RemoteStore`.
//!
//! The scenarios mirror `tests/paged_exchange.rs`: the same churn/resume
//! semantics — partial progress past a dead payload, frozen resume
//! cursors, held-back causal dependents, identical
//! `ReconcileReport { pages, skipped_unavailable, held_back, blocked_on }`
//! outcomes — must hold when the store is on the other end of a socket.
//! On top of that, the network adds a failure mode the in-memory path
//! cannot have: the *whole archive* vanishing mid-exchange. Those tests
//! kill the `PeerServer` and restart it, proving the client's frozen
//! cursor picks up at the gap with no duplicate applies.

use orchestra_core::{Cdss, ExchangeOptions, ReconcileReport};
use orchestra_net::{PeerServer, RemoteOptions, RemoteStore};
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_store::{FetchCursor, FetchPage, InMemoryStore, ReplicatedStore, UpdateStore};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::net::SocketAddr;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;
use std::time::Duration;

/// Client options tuned for tests: fail fast, one retry.
fn fast_opts() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        pool_capacity: 2,
        retries: 1,
        ..RemoteOptions::default()
    }
}

fn kv_schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

/// One site's CDSS: peers A and B with identity mappings, the archive
/// behind `addr`. Each site is its own process-equivalent — its own
/// engines, reconciler state, clock — sharing only the archive.
fn kv_site(addr: SocketAddr) -> Cdss {
    let schema = kv_schema();
    let store = RemoteStore::lazy_with(addr, fast_opts()).unwrap();
    Cdss::builder()
        .peer("A", schema.clone(), TrustPolicy::open(1))
        .peer("B", schema, TrustPolicy::open(1))
        .identity("A", "B")
        .unwrap()
        .build_with_store(Box::new(store))
        .unwrap()
}

/// The `paged_exchange` churn scenario, over real sockets: site A (its
/// own OS thread) publishes through the wire into a replicated archive;
/// site B reconciles through the wire, makes partial progress past a
/// payload whose only holder is down, and resumes from the frozen cursor
/// when the holder returns — with the same `ReconcileReport` outcomes as
/// the in-memory path.
#[test]
fn two_sites_reconcile_over_tcp_with_churn_and_resume() {
    let dht = Arc::new(ReplicatedStore::new(64, 1).unwrap());
    let server = PeerServer::bind("127.0.0.1:0", dht.clone()).unwrap();
    let addr = server.local_addr();

    // Site A runs in its own OS thread and publishes t1..t5 over TCP.
    let publisher = std::thread::spawn(move || {
        let mut site_a = kv_site(addr);
        let a = PeerId::new("A");
        let t1 = site_a
            .publish_transaction(&a, vec![Update::insert("R", tuple![1, 10])])
            .unwrap();
        let t2 = site_a
            .publish_transaction(&a, vec![Update::insert("R", tuple![2, 20])])
            .unwrap();
        let t3 = site_a
            .publish_transaction(&a, vec![Update::insert("R", tuple![3, 30])])
            .unwrap();
        let t4 = site_a
            .publish_transaction(&a, vec![Update::modify("R", tuple![3, 30], tuple![3, 31])])
            .unwrap();
        let t5 = site_a
            .publish_transaction(&a, vec![Update::insert("R", tuple![5, 50])])
            .unwrap();
        (site_a, [t1, t2, t3, t4, t5])
    });
    let (site_a, [t1, t2, t3, t4, t5]) = publisher.join().unwrap();

    // The causal link survived the wire: t4 read what t3 wrote.
    let stored_t4 = dht.fetch(&t4).unwrap().unwrap();
    assert!(stored_t4.antecedents.contains(&t3), "t4 depends on t3");

    // Kill exactly t3's holder (replication factor 1).
    let victim = dht.holders(&t3).unwrap()[0];
    for other in [&t1, &t2, &t4, &t5] {
        assert_ne!(dht.holders(other).unwrap()[0], victim, "only t3 on victim");
    }
    dht.take_node_down(victim);

    // Site B reconciles over TCP: partial progress, gap identified.
    let mut site_b = kv_site(addr);
    let b = PeerId::new("B");
    let report = site_b.reconcile(&b).unwrap();
    assert_eq!(report.blocked_on, Some(t3.clone()), "gap identified");
    assert_eq!(report.skipped_unavailable, 1);
    assert_eq!(report.held_back, 1, "t4 held back behind the gap");
    assert_eq!(report.fetched, 4, "t1, t2, t4, t5 reachable");
    assert_eq!(report.outcome.accepted.len(), 3, "t1, t2, t5 applied");
    assert!(!report.unreachable, "the archive endpoint itself is up");
    {
        let r = site_b.peer(&b).unwrap().instance().relation("R").unwrap();
        assert!(r.contains(&tuple![1, 10]));
        assert!(r.contains(&tuple![2, 20]));
        assert!(r.contains(&tuple![5, 50]));
        assert!(!r.iter().any(|t| t[0] == tuple![3, 0][0]), "no key 3");
    }
    let frozen = site_b.peer(&b).unwrap().resume_cursor().cloned();
    assert!(frozen.is_some(), "cursor frozen at the gap");

    // Blocked retry: same semantics as in-memory — probe the gap, fetch
    // nothing new, burn no epoch.
    let epoch_before = site_b.current_epoch();
    let retry = site_b.reconcile(&b).unwrap();
    assert_eq!(retry.blocked_on, Some(t3.clone()));
    assert_eq!(retry.fetched, 0, "no suffix rescan over the wire either");
    assert_eq!(site_b.current_epoch(), epoch_before, "no epoch inflation");
    assert_eq!(site_b.peer(&b).unwrap().resume_cursor().cloned(), frozen);

    // The holder returns: resume drains the gap + held dependent and B
    // converges on what site A published.
    dht.bring_node_up(victim);
    let report = site_b.reconcile(&b).unwrap();
    assert_eq!(report.blocked_on, None);
    assert_eq!(report.outcome.accepted.len(), 2, "t3, t4 arrive");
    assert!(site_b.peer(&b).unwrap().resume_cursor().is_none());
    assert_eq!(
        site_b.peer(&b).unwrap().instance().relation("R").unwrap(),
        site_a
            .peer(&PeerId::new("A"))
            .unwrap()
            .instance()
            .relation("R")
            .unwrap(),
        "site B converged on site A's instance across the wire"
    );
    server.shutdown();
}

/// A store wrapper that pulls the plug on the server after a fixed number
/// of successful `fetch_page` calls — deterministic "server dies
/// mid-exchange" injection.
struct KillSwitch {
    inner: RemoteStore,
    server: StdMutex<Option<PeerServer>>,
    kill_after_pages: StdMutex<Option<usize>>,
}

impl KillSwitch {
    fn arm(&self, pages: usize, server: PeerServer) {
        *self.server.lock().unwrap() = Some(server);
        *self.kill_after_pages.lock().unwrap() = Some(pages);
    }
}

/// Forwarding handle so the test keeps an [`Arc`] to arm the switch
/// after the store is boxed into the CDSS.
struct SharedKill(Arc<KillSwitch>);

impl UpdateStore for SharedKill {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> orchestra_store::Result<()> {
        self.0.inner.publish(epoch, txns)
    }
    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> orchestra_store::Result<FetchPage> {
        let page = self.0.inner.fetch_page(cursor, limit)?;
        let mut remaining = self.0.kill_after_pages.lock().unwrap();
        if let Some(n) = remaining.as_mut() {
            *n = n.saturating_sub(1);
            if *n == 0 {
                *remaining = None;
                drop(remaining);
                if let Some(server) = self.0.server.lock().unwrap().take() {
                    server.shutdown();
                }
            }
        }
        Ok(page)
    }
    fn fetch(&self, id: &TxnId) -> orchestra_store::Result<Option<Transaction>> {
        self.0.inner.fetch(id)
    }
    fn len(&self) -> usize {
        self.0.inner.len()
    }
    fn latest_epoch(&self) -> Option<Epoch> {
        self.0.inner.latest_epoch()
    }
    fn stats(&self) -> orchestra_store::StoreStats {
        self.0.inner.stats()
    }
}

/// Fault injection (the network analogue of the PR 3 churn test): the
/// `PeerServer` dies *mid-exchange* — after the client has applied some
/// pages but before the scan completes — and is later restarted on the
/// same port over the same archive. The exchange must absorb the outage
/// (no error, `unreachable` reported, progress kept), freeze the resume
/// cursor at the first unfetched position, and the post-restart exchange
/// must pick up exactly there with no duplicate applies.
#[test]
fn server_killed_mid_exchange_restart_resumes_at_gap_without_duplicates() {
    // Seed the archive through a direct connection.
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend.clone()).unwrap();
    let addr = server.local_addr();
    let n = 12i64;
    {
        let mut seeder = kv_site(addr);
        let a = PeerId::new("A");
        for i in 0..n {
            seeder
                .publish_transaction(&a, vec![Update::insert("R", tuple![i, i * 10])])
                .unwrap();
        }
    }

    // Site B reads through a kill switch armed to shut the server down
    // after 3 pages of 2 transactions each.
    let switch = Arc::new(KillSwitch {
        inner: RemoteStore::connect_with(addr, fast_opts()).unwrap(),
        server: StdMutex::new(None),
        kill_after_pages: StdMutex::new(None),
    });
    switch.arm(3, server);
    let mut site_b = Cdss::builder()
        .peer("A", kv_schema(), TrustPolicy::open(1))
        .peer("B", kv_schema(), TrustPolicy::open(1))
        .identity("A", "B")
        .unwrap()
        .build_with_store(Box::new(SharedKill(Arc::clone(&switch))))
        .unwrap();
    let b = PeerId::new("B");

    let first: ReconcileReport = site_b
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 2,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(first.unreachable, "outage reported, not errored");
    assert_eq!(first.pages, 3, "three pages landed before the cut");
    assert_eq!(first.fetched, 6);
    assert_eq!(first.outcome.accepted.len(), 6, "progress kept");
    assert_eq!(first.blocked_on, None, "no payload gap, a transport cut");
    let frozen = site_b.peer(&b).unwrap().resume_cursor().cloned();
    assert!(
        frozen.is_some(),
        "cursor frozen at the first unfetched page"
    );

    // While down: polls degrade gracefully, state stays frozen.
    let down = site_b
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 2,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(down.unreachable);
    assert_eq!(down.fetched, 0);
    assert_eq!(down.outcome.accepted.len(), 0);
    assert_eq!(site_b.peer(&b).unwrap().resume_cursor().cloned(), frozen);

    // Restart on the same port over the same archive; the next exchange
    // resumes at the gap and the two exchanges together apply every
    // transaction exactly once.
    let server = PeerServer::bind(addr, backend).unwrap();
    let second = site_b
        .reconcile_with(
            &b,
            ExchangeOptions {
                page_limit: 2,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!second.unreachable);
    assert_eq!(second.blocked_on, None);
    assert_eq!(
        second.outcome.accepted.len(),
        (n as usize) - 6,
        "exactly the unseen suffix, no duplicates"
    );
    let seen: std::collections::BTreeSet<_> = first
        .outcome
        .accepted
        .iter()
        .chain(second.outcome.accepted.iter())
        .collect();
    assert_eq!(seen.len(), n as usize, "no id applied twice");
    assert!(site_b.peer(&b).unwrap().resume_cursor().is_none());
    let r = site_b.peer(&b).unwrap().instance().relation("R").unwrap();
    assert_eq!(r.len(), n as usize);
    for i in 0..n {
        assert!(r.contains(&tuple![i, i * 10]), "row {i} present once");
    }
    server.shutdown();
}

/// A site built while the archive endpoint is down comes up degraded but
/// functional: reconcile absorbs the outage (no error), and once the
/// server appears the same site catches up normally.
#[test]
fn site_survives_starting_before_its_peer_server() {
    // Reserve a port nothing listens on, then release it.
    let probe = PeerServer::bind("127.0.0.1:0", Arc::new(InMemoryStore::new())).unwrap();
    let addr = probe.local_addr();
    probe.shutdown();

    let mut site = kv_site(addr);
    let b = PeerId::new("B");
    let report = site.reconcile(&b).unwrap();
    assert!(report.unreachable, "dead endpoint absorbed, not errored");
    assert_eq!(report.fetched, 0);

    // The server appears (fresh archive) and another site publishes.
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind(addr, backend).unwrap();
    {
        let mut site_a = kv_site(addr);
        site_a
            .publish_transaction(&PeerId::new("A"), vec![Update::insert("R", tuple![7, 70])])
            .unwrap();
    }
    let report = site.reconcile(&b).unwrap();
    assert!(!report.unreachable);
    assert_eq!(report.outcome.accepted.len(), 1);
    assert!(site
        .peer(&b)
        .unwrap()
        .instance()
        .relation("R")
        .unwrap()
        .contains(&tuple![7, 70]));
    server.shutdown();
}
