//! Failure injection: what happens to update exchange when the archive
//! degrades, when peers submit malformed input, and at API misuse points.

use orchestra_core::{demo, Cdss, CoreError};
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_store::{ReplicatedStore, StoreError, UpdateStore};
use orchestra_updates::{Epoch, PeerId, Update};
use std::sync::Arc;

/// Forwarding wrapper (keeps a handle for churn control).
struct Shared(Arc<ReplicatedStore>);

impl UpdateStore for Shared {
    fn publish(
        &self,
        epoch: Epoch,
        txns: Vec<orchestra_updates::Transaction>,
    ) -> orchestra_store::Result<()> {
        self.0.publish(epoch, txns)
    }
    fn fetch_page(
        &self,
        cursor: &orchestra_store::FetchCursor,
        limit: usize,
    ) -> orchestra_store::Result<orchestra_store::FetchPage> {
        self.0.fetch_page(cursor, limit)
    }
    fn fetch(
        &self,
        id: &orchestra_updates::TxnId,
    ) -> orchestra_store::Result<Option<orchestra_updates::Transaction>> {
        self.0.fetch(id)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn latest_epoch(&self) -> Option<Epoch> {
        self.0.latest_epoch()
    }
    fn stats(&self) -> orchestra_store::StoreStats {
        self.0.stats()
    }
}

/// When the archive loses all replicas of a payload, reconciliation no
/// longer errors: it reports the blocking transaction, freezes the peer's
/// resume cursor at the gap, and leaves the instance untouched; after the
/// nodes recover, the next reconcile resumes from the cursor and applies
/// everything.
#[test]
fn reconcile_survives_store_outage_and_recovers() {
    let dht = Arc::new(ReplicatedStore::new(4, 1).unwrap());
    let mut cdss = demo::figure2_with_store(Box::new(Shared(Arc::clone(&dht)))).unwrap();
    let alaska = PeerId::new("Alaska");
    let dresden = PeerId::new("Dresden");

    let txn = cdss
        .publish_transaction(
            &alaska,
            vec![
                Update::insert("O", tuple!["HIV", 1]),
                Update::insert("P", tuple!["gp120", 2]),
                Update::insert("S", tuple![1, 2, "AAA"]),
            ],
        )
        .unwrap();

    // Kill every storage node: the payload is unreachable.
    for n in 0..4 {
        dht.take_node_down(n);
    }
    let report = cdss.reconcile(&dresden).unwrap();
    assert_eq!(report.blocked_on, Some(txn.clone()), "gap identified");
    assert_eq!(report.skipped_unavailable, 1);
    assert_eq!(report.fetched, 0);
    assert!(report.outcome.accepted.is_empty());
    let peer = cdss.peer(&dresden).unwrap();
    assert!(peer.resume_cursor().is_some(), "cursor frozen at the gap");
    assert_eq!(
        peer.instance().total_tuples(),
        0,
        "blocked reconcile left no partial state"
    );

    // A retry while the outage persists learns nothing new: no epoch burn.
    let epoch_before = cdss.current_epoch();
    let retry = cdss.reconcile(&dresden).unwrap();
    assert_eq!(retry.blocked_on, Some(txn));
    assert_eq!(cdss.current_epoch(), epoch_before, "idle retry is free");

    // Nodes come back: the next reconcile resumes from the frozen cursor.
    for n in 0..4 {
        dht.bring_node_up(n);
    }
    let report = cdss.reconcile(&dresden).unwrap();
    assert_eq!(report.outcome.accepted.len(), 1);
    assert_eq!(report.blocked_on, None);
    assert!(cdss.peer(&dresden).unwrap().resume_cursor().is_none());
    assert!(cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "AAA"]));
}

/// Publishing malformed updates fails loudly, before anything is archived.
#[test]
fn malformed_updates_rejected_at_publish() {
    let mut cdss = demo::figure2().unwrap();
    let alaska = PeerId::new("Alaska");

    // Wrong arity.
    let err = cdss.publish_transaction(&alaska, vec![Update::insert("O", tuple!["HIV"])]);
    assert!(err.is_err());
    // Unknown relation.
    let err = cdss.publish_transaction(&alaska, vec![Update::insert("Zed", tuple![1])]);
    assert!(err.is_err());
    // Modify that changes the key.
    let err = cdss.publish_transaction(
        &alaska,
        vec![Update::modify("O", tuple!["HIV", 1], tuple!["HIV", 2])],
    );
    assert!(err.is_err());
    assert_eq!(cdss.store().len(), 0, "nothing was archived");
}

/// Unknown peers are rejected across the public API surface.
#[test]
fn unknown_peer_errors() {
    let mut cdss = demo::figure2().unwrap();
    let ghost = PeerId::new("Ghost");
    assert!(matches!(
        cdss.publish(&ghost),
        Err(CoreError::UnknownPeer(_))
    ));
    assert!(matches!(
        cdss.reconcile(&ghost),
        Err(CoreError::UnknownPeer(_))
    ));
    assert!(cdss.peer(&ghost).is_err());
    assert!(matches!(
        cdss.resolve(&ghost, &orchestra_updates::TxnId::new(PeerId::new("A"), 1)),
        Err(CoreError::UnknownPeer(_))
    ));
}

/// Builder misconfiguration is caught at build time.
#[test]
fn builder_validation() {
    // No peers.
    assert!(matches!(Cdss::builder().build(), Err(CoreError::Config(_))));
    // Identity mappings between peers with different schemas.
    let s1 = DatabaseSchema::new("a")
        .with_relation(RelationSchema::from_parts("R", &[("x", ValueType::Int)]).unwrap())
        .unwrap();
    let s2 = DatabaseSchema::new("b")
        .with_relation(RelationSchema::from_parts("Q", &[("x", ValueType::Int)]).unwrap())
        .unwrap();
    let err = Cdss::builder()
        .peer("A", s1.clone(), TrustPolicy::open(1))
        .peer("B", s2, TrustPolicy::open(1))
        .identity("A", "B");
    assert!(matches!(err, Err(CoreError::Config(_))));
    // Identity with an unknown peer.
    let err = Cdss::builder()
        .peer("A", s1.clone(), TrustPolicy::open(1))
        .identity("A", "Nope");
    assert!(matches!(err, Err(CoreError::UnknownPeer(_))));
    // Duplicate peer names.
    let err = Cdss::builder()
        .peer("A", s1.clone(), TrustPolicy::open(1))
        .peer("A", s1, TrustPolicy::open(1))
        .build();
    assert!(err.is_err());
}

/// Resolving a non-deferred transaction is an error and changes nothing.
#[test]
fn resolve_requires_deferred_state() {
    let mut cdss = demo::figure2().unwrap();
    let alaska = PeerId::new("Alaska");
    let dresden = PeerId::new("Dresden");
    let txn = cdss
        .publish_transaction(&alaska, vec![Update::insert("O", tuple!["HIV", 1])])
        .unwrap();
    cdss.reconcile(&dresden).unwrap();
    // Accepted, not deferred.
    let err = cdss.resolve(&dresden, &txn);
    assert!(matches!(err, Err(CoreError::Reconcile(_))));
}

/// The store rejects duplicate transaction ids even across publishers —
/// archived history is immutable.
#[test]
fn store_rejects_duplicate_ids() {
    let store = ReplicatedStore::new(4, 2).unwrap();
    let txn = orchestra_updates::Transaction::new(
        orchestra_updates::TxnId::new(PeerId::new("X"), 1),
        Epoch::new(1),
        vec![Update::insert("R", tuple![1])],
    );
    store.publish(Epoch::new(1), vec![txn.clone()]).unwrap();
    assert!(matches!(
        store.publish(Epoch::new(2), vec![txn]),
        Err(StoreError::DuplicateTxn(_))
    ));
}

/// A peer's instance snapshot exports and re-imports losslessly —
/// including labeled nulls invented by the split mapping.
#[test]
fn peer_instance_io_roundtrip() {
    use orchestra_relational::io::{export_instance, import_instance};
    let mut cdss = demo::figure2().unwrap();
    let alaska = PeerId::new("Alaska");
    let dresden = PeerId::new("Dresden");
    cdss.publish_transaction(
        &dresden,
        vec![Update::insert("OPS", tuple!["Rat", "p53", "MEEP"])],
    )
    .unwrap();
    cdss.reconcile(&alaska).unwrap();

    let original = cdss.peer(&alaska).unwrap().instance().clone();
    assert!(original
        .relation("O")
        .unwrap()
        .iter()
        .any(|t| t.has_labeled_null()));
    let text = export_instance(&original);
    let mut restored = orchestra_relational::Instance::new(original.schema().clone());
    import_instance(&mut restored, &text).unwrap();
    assert_eq!(restored, original);
}
