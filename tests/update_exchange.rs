//! Cross-crate integration tests for update exchange: translation through
//! mapping chains, convergence between peers, deletion propagation, and
//! provenance-carried trust.

use orchestra_core::demo;
use orchestra_core::Cdss;
use orchestra_datalog::{Atom, Tgd};
use orchestra_provenance::Semiring as _;
use orchestra_reconcile::{TrustCondition, TrustPolicy};
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, Value, ValueType};
use orchestra_updates::{PeerId, Update};

fn p(name: &str) -> PeerId {
    PeerId::new(name)
}

/// Peers sharing a schema converge to the same instance after exchanging
/// updates, regardless of reconciliation order.
#[test]
fn shared_schema_peers_converge() {
    let mut cdss = demo::figure2().unwrap();
    // Alaska and Beijing both publish disjoint Σ1 data.
    cdss.publish_transaction(
        &p("Alaska"),
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "AAA"]),
        ],
    )
    .unwrap();
    cdss.publish_transaction(
        &p("Beijing"),
        vec![
            Update::insert("O", tuple!["Mouse", 3]),
            Update::insert("P", tuple!["Tp53", 4]),
            Update::insert("S", tuple![3, 4, "BBB"]),
        ],
    )
    .unwrap();
    cdss.reconcile(&p("Beijing")).unwrap();
    cdss.reconcile(&p("Alaska")).unwrap();

    // Data-exchange semantics: each peer's instance is a *universal
    // solution*, unique only up to homomorphism — the concrete (null-free)
    // portions must agree exactly, while labeled-null rows (invented by
    // the Σ2 → Σ1 split mapping on the round trip through Crete's schema)
    // may differ in which peer's data they echo.
    let concrete = |peer: &str, rel: &str| -> Vec<_> {
        cdss.peer(&p(peer))
            .unwrap()
            .instance()
            .relation(rel)
            .unwrap()
            .iter()
            .filter(|t| !t.has_labeled_null())
            .cloned()
            .collect::<Vec<_>>()
    };
    for rel in ["O", "P", "S"] {
        assert_eq!(concrete("Alaska", rel), concrete("Beijing", rel), "{rel}");
    }
    assert_eq!(concrete("Alaska", "O").len(), 2);
    // The round trip exists: Beijing holds a labeled-null echo of
    // Alaska's organism (invented by MC→A), and vice versa.
    let has_null_echo = |peer: &str| {
        cdss.peer(&p(peer))
            .unwrap()
            .instance()
            .relation("O")
            .unwrap()
            .iter()
            .any(|t| t.has_labeled_null())
    };
    assert!(has_null_echo("Beijing"));
    assert!(has_null_echo("Alaska"));
}

/// Σ2 peers converge through the identity mapping as well.
#[test]
fn sigma2_peers_converge() {
    let mut cdss = demo::figure2().unwrap();
    cdss.publish_transaction(
        &p("Dresden"),
        vec![Update::insert("OPS", tuple!["Rat", "p53", "CCC"])],
    )
    .unwrap();
    // Crete trusts Dresden (priority 1).
    cdss.reconcile(&p("Crete")).unwrap();
    let crete_ops = cdss
        .peer(&p("Crete"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(crete_ops.contains(&tuple!["Rat", "p53", "CCC"]));
}

/// A deletion published at the origin propagates through the mapping
/// chain: the derived OPS row disappears at Σ2 peers.
#[test]
fn deletion_propagates_through_join() {
    let mut cdss = demo::figure2().unwrap();
    let txn = cdss
        .publish_transaction(
            &p("Alaska"),
            vec![
                Update::insert("O", tuple!["HIV", 1]),
                Update::insert("P", tuple!["gp120", 2]),
                Update::insert("S", tuple![1, 2, "AAA"]),
            ],
        )
        .unwrap();
    cdss.reconcile(&p("Dresden")).unwrap();
    assert!(cdss
        .peer(&p("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "AAA"]));

    // Alaska deletes the sequence row: the join no longer produces OPS.
    let del = cdss
        .publish_transaction(&p("Alaska"), vec![Update::delete("S", tuple![1, 2, "AAA"])])
        .unwrap();
    let stored = cdss.store().fetch(&del).unwrap().unwrap();
    assert!(
        stored.antecedents.contains(&txn),
        "delete depends on insert"
    );

    let report = cdss.reconcile(&p("Dresden")).unwrap();
    assert_eq!(report.outcome.accepted.len(), 1);
    assert!(!cdss
        .peer(&p("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "AAA"]));
}

/// A tuple derivable from two independent origins survives deletion of
/// one of them (provenance-based deletion propagation at work).
#[test]
fn alternative_derivations_survive_partial_deletion() {
    let mut cdss = demo::figure2().unwrap();
    // Alaska and Beijing independently support the same OPS row.
    let a_txn = cdss
        .publish_transaction(
            &p("Alaska"),
            vec![
                Update::insert("O", tuple!["HIV", 1]),
                Update::insert("P", tuple!["gp120", 2]),
                Update::insert("S", tuple![1, 2, "SAME"]),
            ],
        )
        .unwrap();
    cdss.publish_transaction(
        &p("Beijing"),
        vec![
            Update::insert("O", tuple!["HIV", 7]),
            Update::insert("P", tuple!["gp120", 8]),
            Update::insert("S", tuple![7, 8, "SAME"]),
        ],
    )
    .unwrap();
    cdss.reconcile(&p("Dresden")).unwrap();
    assert!(cdss
        .peer(&p("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "SAME"]));

    // Alaska retracts its copy; Beijing's derivation still supports OPS.
    cdss.publish_transaction(
        &p("Alaska"),
        vec![Update::delete("S", tuple![1, 2, "SAME"])],
    )
    .unwrap();
    let report = cdss.reconcile(&p("Dresden")).unwrap();
    // The delete transaction translates to no visible change at Dresden.
    assert_eq!(
        report.applied_updates, 0,
        "no deletion reaches Dresden while Beijing's copy lives"
    );
    assert!(cdss
        .peer(&p("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "SAME"]));
    let _ = a_txn;
}

/// Content-based trust conditions: a peer can trust only updates about
/// organisms it studies.
#[test]
fn content_based_trust_filters_updates() {
    use orchestra_relational::Predicate;
    let mut cdss = demo::figure2().unwrap();
    // Re-policy Dresden: only HIV-related OPS updates are trusted.
    cdss.peer_mut(&p("Dresden"))
        .unwrap()
        .set_policy(TrustPolicy::closed().with(TrustCondition::content(
            "OPS",
            Predicate::col_eq(0, "HIV"),
            1,
        )));
    cdss.publish_transaction(
        &p("Crete"),
        vec![Update::insert("OPS", tuple!["HIV", "gp120", "AAA"])],
    )
    .unwrap();
    cdss.publish_transaction(
        &p("Crete"),
        vec![Update::insert("OPS", tuple!["Rat", "p53", "BBB"])],
    )
    .unwrap();
    cdss.reconcile(&p("Dresden")).unwrap();
    let ops = cdss
        .peer(&p("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "AAA"]));
    assert!(
        !ops.contains(&tuple!["Rat", "p53", "BBB"]),
        "distrusted content"
    );
}

/// Deep-origin trust: a peer can distrust data *derived from* another
/// peer even when a trusted peer publishes it.
#[test]
fn derived_from_trust_condition() {
    let mut cdss = demo::figure2().unwrap();
    // Dresden trusts only updates derived from Beijing's data.
    cdss.peer_mut(&p("Dresden"))
        .unwrap()
        .set_policy(TrustPolicy::closed().with(TrustCondition::derived_from(p("Beijing"), 1)));
    cdss.publish_transaction(
        &p("Beijing"),
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "FROM-BEIJING"]),
        ],
    )
    .unwrap();
    cdss.publish_transaction(
        &p("Alaska"),
        vec![
            Update::insert("O", tuple!["Rat", 3]),
            Update::insert("P", tuple!["p53", 4]),
            Update::insert("S", tuple![3, 4, "FROM-ALASKA"]),
        ],
    )
    .unwrap();
    cdss.reconcile(&p("Dresden")).unwrap();
    let ops = cdss
        .peer(&p("Dresden"))
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "FROM-BEIJING"]));
    assert!(!ops.contains(&tuple!["Rat", "p53", "FROM-ALASKA"]));
}

/// Provenance is queryable at the peer level: a translated tuple's
/// polynomial mentions the origin bases, and evaluates under Boolean
/// restriction like the theory says.
#[test]
fn peer_level_provenance_inspection() {
    let mut cdss = demo::figure2().unwrap();
    cdss.publish_transaction(
        &p("Alaska"),
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "AAA"]),
        ],
    )
    .unwrap();
    cdss.reconcile(&p("Dresden")).unwrap();
    let peer = cdss.peer(&p("Dresden")).unwrap();
    let poly = peer
        .provenance("OPS", &tuple!["HIV", "gp120", "AAA"])
        .expect("provenance of translated tuple");
    assert!(!poly.is_zero());
    // The polynomial's variables resolve to Alaska's transaction.
    let vars = poly.variables();
    assert!(!vars.is_empty());
    for v in &vars {
        let txn = peer.node_transaction(*v).expect("base node has publisher");
        assert_eq!(txn.peer, p("Alaska"));
    }
}

/// A three-peer chain with a custom (non-Figure-2) topology: updates flow
/// A → B → C through composed mappings with a filter.
#[test]
fn chain_topology_with_filter() {
    use orchestra_datalog::{Filter, Term};
    use orchestra_relational::CmpOp;

    fn rel(name: &str) -> DatabaseSchema {
        DatabaseSchema::new("s")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    name,
                    &[("k", ValueType::Int), ("v", ValueType::Int)],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap()
    }

    let mut cdss = Cdss::builder()
        .peer("A", rel("R"), TrustPolicy::open(1))
        .peer("B", rel("R"), TrustPolicy::open(1))
        .peer("C", rel("R"), TrustPolicy::open(1))
        .mapping(
            Tgd::new(
                "A->B",
                vec![Atom::vars("A.R", &["k", "v"])],
                vec![Atom::vars("B.R", &["k", "v"])],
            )
            .unwrap(),
        )
        .mapping(
            // Only rows with v > 10 flow from B to C.
            Tgd::with_filters(
                "B->C",
                vec![Atom::vars("B.R", &["k", "v"])],
                vec![Atom::vars("C.R", &["k", "v"])],
                vec![Filter::new(Term::var("v"), CmpOp::Gt, Term::val(10))],
            )
            .unwrap(),
        )
        .build()
        .unwrap();

    cdss.publish_transaction(
        &p("A"),
        vec![
            Update::insert("R", tuple![1, 5]),
            Update::insert("R", tuple![2, 50]),
        ],
    )
    .unwrap();
    cdss.reconcile(&p("B")).unwrap();
    cdss.reconcile(&p("C")).unwrap();

    let b = cdss
        .peer(&p("B"))
        .unwrap()
        .instance()
        .relation("R")
        .unwrap();
    assert_eq!(b.len(), 2);
    let c = cdss
        .peer(&p("C"))
        .unwrap()
        .instance()
        .relation("R")
        .unwrap();
    assert_eq!(c.len(), 1, "filter admits only v > 10");
    assert!(c.contains(&tuple![2, 50]));
}

/// The same labeled null is reused across epochs: re-publishing more
/// sequences for an organism does not invent a second organism id.
#[test]
fn labeled_nulls_are_stable_across_epochs() {
    let mut cdss = demo::figure2().unwrap();
    cdss.publish_transaction(
        &p("Dresden"),
        vec![Update::insert("OPS", tuple!["Rat", "p53", "S1"])],
    )
    .unwrap();
    cdss.reconcile(&p("Alaska")).unwrap();
    cdss.publish_transaction(
        &p("Dresden"),
        vec![Update::insert("OPS", tuple!["Rat", "mdm2", "S2"])],
    )
    .unwrap();
    cdss.reconcile(&p("Alaska")).unwrap();

    let peer = cdss.peer(&p("Alaska")).unwrap();
    let o = peer.instance().relation("O").unwrap();
    // One organism row despite two epochs of Rat data.
    let rats: Vec<_> = o.iter().filter(|t| t[0] == Value::str("Rat")).collect();
    assert_eq!(rats.len(), 1);
    // Two sequences, both keyed by the same invented organism id.
    let s = peer.instance().relation("S").unwrap();
    let oids: std::collections::BTreeSet<Value> = s.iter().map(|t| t[0].clone()).collect();
    assert_eq!(oids.len(), 1);
    assert!(oids.iter().next().unwrap().is_labeled_null());
}

/// Reconciling with no new transactions is a no-op.
#[test]
fn empty_reconcile_is_noop() {
    let mut cdss = demo::figure2().unwrap();
    let report = cdss.reconcile(&p("Alaska")).unwrap();
    assert_eq!(report.fetched, 0);
    assert_eq!(report.candidates, 0);
    assert!(report.outcome.accepted.is_empty());
    // Re-reconciling after an exchange fetches nothing new.
    cdss.publish_transaction(
        &p("Dresden"),
        vec![Update::insert("OPS", tuple!["x", "y", "z"])],
    )
    .unwrap();
    cdss.reconcile(&p("Alaska")).unwrap();
    let report = cdss.reconcile(&p("Alaska")).unwrap();
    assert_eq!(report.candidates, 0);
}
