//! The five demonstration scenarios of §4 of the paper, verbatim, as
//! integration tests over the full Figure 2 CDSS (experiment E3).

use orchestra_core::demo;
use orchestra_reconcile::Decision;
use orchestra_relational::{tuple, Value};
use orchestra_store::ReplicatedStore;
use orchestra_updates::{PeerId, TxnId, Update};

fn peers() -> (PeerId, PeerId, PeerId, PeerId) {
    (
        PeerId::new("Alaska"),
        PeerId::new("Beijing"),
        PeerId::new("Crete"),
        PeerId::new("Dresden"),
    )
}

/// Scenario 1: "Updates made by Alaska get translated into Dresden's
/// schema and applied, and vice versa."
#[test]
fn scenario1_alaska_dresden_roundtrip() {
    let mut cdss = demo::figure2().unwrap();
    let (alaska, _beijing, _crete, dresden) = peers();

    // Alaska → Dresden: a Σ1 triple becomes one OPS row.
    cdss.publish_transaction(
        &alaska,
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "MRVKEKYQ"]),
        ],
    )
    .unwrap();
    let report = cdss.reconcile(&dresden).unwrap();
    assert_eq!(report.outcome.accepted.len(), 1);
    let ops = cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "MRVKEKYQ"]));

    // Vice versa: Dresden publishes an OPS row; Alaska receives the split
    // Σ1 relations with invented (labeled-null) ids.
    cdss.publish_transaction(
        &dresden,
        vec![Update::insert("OPS", tuple!["Rat", "p53", "MEEPQSDPSV"])],
    )
    .unwrap();
    let report = cdss.reconcile(&alaska).unwrap();
    assert!(!report.outcome.accepted.is_empty());
    let peer = cdss.peer(&alaska).unwrap();
    let o = peer.instance().relation("O").unwrap();
    let rat_row = o
        .iter()
        .find(|t| t[0] == Value::str("Rat"))
        .expect("Rat organism translated to Alaska");
    assert!(rat_row[1].is_labeled_null(), "organism id was invented");
    let s = peer.instance().relation("S").unwrap();
    assert!(
        s.iter()
            .any(|t| t[2] == Value::str("MEEPQSDPSV") && t[0].is_labeled_null()),
        "sequence row with invented ids"
    );
}

/// Scenario 2: "Beijing and Dresden publish conflicting updates, and
/// Crete therefore rejects Dresden's. Dresden then publishes more updates
/// which depend on its earlier ones, which Crete must also reject."
#[test]
fn scenario2_priority_rejection_and_cascade() {
    let mut cdss = demo::figure2().unwrap();
    let (_alaska, beijing, crete, dresden) = peers();

    // Beijing's Σ1 data joins to OPS('HIV','gp120','SEQ-BEIJING').
    cdss.publish_transaction(
        &beijing,
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "SEQ-BEIJING"]),
        ],
    )
    .unwrap();
    // Dresden's conflicting row for the same (org, prot) key.
    let dresden_txn = cdss
        .publish_transaction(
            &dresden,
            vec![Update::insert("OPS", tuple!["HIV", "gp120", "SEQ-DRESDEN"])],
        )
        .unwrap();

    // Crete prefers Beijing (priority 2) over Dresden (priority 1).
    let report = cdss.reconcile(&crete).unwrap();
    assert!(report.outcome.rejected.contains(&dresden_txn));
    let ops = cdss
        .peer(&crete)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "SEQ-BEIJING"]));
    assert!(!ops.contains(&tuple!["HIV", "gp120", "SEQ-DRESDEN"]));

    // Dresden now modifies its own (rejected-at-Crete) row: the new
    // transaction depends on the earlier one.
    let follow_up = cdss
        .publish_transaction(
            &dresden,
            vec![Update::modify(
                "OPS",
                tuple!["HIV", "gp120", "SEQ-DRESDEN"],
                tuple!["HIV", "gp120", "SEQ-DRESDEN-V2"],
            )],
        )
        .unwrap();
    // The dependency was derived from provenance automatically.
    let stored = cdss.store().fetch(&follow_up).unwrap().unwrap();
    assert!(stored.antecedents.contains(&dresden_txn));

    let report = cdss.reconcile(&crete).unwrap();
    assert!(report.outcome.rejected.contains(&follow_up), "cascade");
    assert_eq!(
        cdss.peer(&crete).unwrap().decision(&follow_up),
        Some(Decision::Rejected)
    );
}

/// Scenario 3: "Alaska publishes an insertion of several data points in
/// the same transaction. Beijing publishes a modification of one of them.
/// Crete then reconciles, and ends up accepting both the transaction from
/// Beijing and the antecedent from Alaska, even though Crete does not
/// trust Alaska."
#[test]
fn scenario3_trusted_txn_pulls_distrusted_antecedent() {
    let mut cdss = demo::figure2().unwrap();
    let (alaska, beijing, crete, _dresden) = peers();

    let alaska_txn = cdss
        .publish_transaction(
            &alaska,
            vec![
                Update::insert("O", tuple!["HIV", 1]),
                Update::insert("P", tuple!["gp120", 2]),
                Update::insert("P", tuple!["gp41", 3]),
                Update::insert("S", tuple![1, 2, "SEQ-V1"]),
                Update::insert("S", tuple![1, 3, "SEQ-V2"]),
            ],
        )
        .unwrap();

    // Beijing reconciles (receives Alaska's data via the identity
    // mapping), then modifies one of the data points.
    cdss.reconcile(&beijing).unwrap();
    let beijing_txn = cdss
        .publish_transaction(
            &beijing,
            vec![Update::modify(
                "S",
                tuple![1, 2, "SEQ-V1"],
                tuple![1, 2, "SEQ-V1-FIXED"],
            )],
        )
        .unwrap();
    let stored = cdss.store().fetch(&beijing_txn).unwrap().unwrap();
    assert!(
        stored.antecedents.contains(&alaska_txn),
        "provenance-derived dependency on Alaska's transaction"
    );

    // Crete reconciles: Alaska alone would be distrusted, but Beijing's
    // trusted modification pulls the antecedent in.
    let report = cdss.reconcile(&crete).unwrap();
    let accepted = &report.outcome.accepted;
    assert!(accepted.contains(&alaska_txn), "antecedent accepted");
    assert!(accepted.contains(&beijing_txn), "trusted txn accepted");
    // Dependency order: Alaska before Beijing.
    let pos_a = accepted.iter().position(|t| *t == alaska_txn).unwrap();
    let pos_b = accepted.iter().position(|t| *t == beijing_txn).unwrap();
    assert!(pos_a < pos_b);

    let ops = cdss
        .peer(&crete)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "SEQ-V1-FIXED"]));
    assert!(ops.contains(&tuple!["HIV", "gp41", "SEQ-V2"]));
    assert!(!ops.contains(&tuple!["HIV", "gp120", "SEQ-V1"]));
}

/// Scenario 4: "Beijing and Alaska publish conflicting updates. Dresden
/// reconciles and defers both of them … Crete reconciles and publishes a
/// modification of Beijing's update. Dresden reconciles again and defers
/// Crete's update. Dresden then resolves the conflict [in favor of
/// Beijing], and accepts Crete's transaction automatically."
#[test]
fn scenario4_deferral_and_manual_resolution() {
    let mut cdss = demo::figure2().unwrap();
    let (alaska, beijing, crete, dresden) = peers();

    // Shared context so both Σ1 peers' sequences join to the same OPS key:
    // Alaska establishes the organism and protein ids.
    cdss.publish_transaction(
        &alaska,
        vec![
            Update::insert("O", tuple!["HIV", 1]),
            Update::insert("P", tuple!["gp120", 2]),
        ],
    )
    .unwrap();
    // Beijing learns the ids (via identity mapping) before diverging.
    cdss.reconcile(&beijing).unwrap();

    // Conflicting, causally independent sequence claims.
    let alaska_txn = cdss
        .publish_transaction(
            &alaska,
            vec![Update::insert("S", tuple![1, 2, "SEQ-ALASKA"])],
        )
        .unwrap();
    let beijing_txn = cdss
        .publish_transaction(
            &beijing,
            vec![Update::insert("S", tuple![1, 2, "SEQ-BEIJING"])],
        )
        .unwrap();

    // Dresden trusts both equally: both deferred.
    let report = cdss.reconcile(&dresden).unwrap();
    assert!(report.outcome.deferred.contains(&alaska_txn));
    assert!(report.outcome.deferred.contains(&beijing_txn));
    assert_eq!(cdss.peer(&dresden).unwrap().open_conflicts().len(), 1);
    assert!(cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .is_empty());

    // Crete reconciles (accepts Beijing per its policy) and publishes a
    // modification of Beijing's update.
    cdss.reconcile(&crete).unwrap();
    assert!(cdss
        .peer(&crete)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap()
        .contains(&tuple!["HIV", "gp120", "SEQ-BEIJING"]));
    let crete_txn = cdss
        .publish_transaction(
            &crete,
            vec![Update::modify(
                "OPS",
                tuple!["HIV", "gp120", "SEQ-BEIJING"],
                tuple!["HIV", "gp120", "SEQ-CRETE"],
            )],
        )
        .unwrap();
    let stored = cdss.store().fetch(&crete_txn).unwrap().unwrap();
    assert!(stored.antecedents.contains(&beijing_txn));

    // Dresden reconciles again: Crete's txn depends on deferred Beijing.
    let report = cdss.reconcile(&dresden).unwrap();
    assert!(report.outcome.deferred.contains(&crete_txn));

    // The administrator resolves in favor of Beijing: Beijing + Crete
    // apply automatically, Alaska's claim is rejected.
    let res = cdss.resolve(&dresden, &beijing_txn).unwrap();
    let accepted: Vec<TxnId> = res.outcome.accepted.iter().map(|t| t.id.clone()).collect();
    assert!(accepted.contains(&beijing_txn));
    assert!(accepted.contains(&crete_txn), "accepted automatically");
    assert!(res.outcome.rejected.contains(&alaska_txn));

    let ops = cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "SEQ-CRETE"]));
    assert!(!ops.contains(&tuple!["HIV", "gp120", "SEQ-ALASKA"]));
    assert!(cdss.peer(&dresden).unwrap().open_conflicts().is_empty());
}

/// Scenario 5: "Beijing publishes a number of updates and then goes
/// offline. Alaska can reconcile and still retrieve Beijing's updates
/// from the CDSS."
#[test]
fn scenario5_offline_publisher_archived_updates() {
    // Use the simulated DHT so "the CDSS stores the updates" is literal:
    // the archive survives storage-node churn within the replication
    // factor, and the publisher plays no role in retrieval.
    let store = ReplicatedStore::new(8, 3).unwrap();
    let mut cdss = demo::figure2_with_store(Box::new(store)).unwrap();
    let (alaska, beijing, _crete, _dresden) = peers();

    cdss.publish_transactions(
        &beijing,
        vec![
            vec![
                Update::insert("O", tuple!["Mouse", 10]),
                Update::insert("P", tuple!["Tp53", 20]),
            ],
            vec![Update::insert("S", tuple![10, 20, "MEEPQSD"])],
        ],
    )
    .unwrap();

    // Beijing "goes offline": it takes no further part. Some storage
    // churn happens (within the replication factor).
    // (Peers are not storage nodes; this models infrastructure churn.)
    // Note: figure2_with_store boxed the store, so churn is exercised in
    // the store's own tests; here the essential claim is that retrieval
    // needs nothing from Beijing.
    let report = cdss.reconcile(&alaska).unwrap();
    assert_eq!(report.fetched, 2);
    assert_eq!(report.outcome.accepted.len(), 2);
    let peer = cdss.peer(&alaska).unwrap();
    assert!(peer
        .instance()
        .relation("O")
        .unwrap()
        .contains(&tuple!["Mouse", 10]));
    assert!(peer
        .instance()
        .relation("S")
        .unwrap()
        .contains(&tuple![10, 20, "MEEPQSD"]));
}

/// The logical clock advances with every update exchange (§2).
#[test]
fn logical_clock_advances_per_exchange() {
    let mut cdss = demo::figure2().unwrap();
    let (alaska, _b, _c, dresden) = peers();
    let e0 = cdss.current_epoch();
    cdss.publish_transaction(&alaska, vec![Update::insert("O", tuple!["X", 1])])
        .unwrap();
    let e1 = cdss.current_epoch();
    assert!(e1 > e0);
    cdss.reconcile(&dresden).unwrap();
    let e2 = cdss.current_epoch();
    assert!(e2 > e1);
}

/// Publishing via snapshot diff: local edits made directly on the
/// instance are picked up, paired into modifies, and published once.
#[test]
fn diff_based_publish() {
    let mut cdss = demo::figure2().unwrap();
    let (alaska, _b, _c, dresden) = peers();

    // Local autonomy: edit the instance directly.
    {
        let peer = cdss.peer_mut(&alaska).unwrap();
        let inst = peer.instance_mut();
        inst.insert("O", tuple!["HIV", 1]).unwrap();
        inst.insert("P", tuple!["gp120", 2]).unwrap();
        inst.insert("S", tuple![1, 2, "V1"]).unwrap();
    }
    let txn1 = cdss.publish(&alaska).unwrap().expect("pending edits");
    // Nothing more to publish.
    assert!(cdss.publish(&alaska).unwrap().is_none());

    // A second round of edits: modify by key.
    {
        let peer = cdss.peer_mut(&alaska).unwrap();
        peer.instance_mut().upsert("S", tuple![1, 2, "V2"]).unwrap();
    }
    let txn2 = cdss.publish(&alaska).unwrap().expect("pending edits");
    let stored = cdss.store().fetch(&txn2).unwrap().unwrap();
    assert_eq!(stored.updates.len(), 1);
    assert!(matches!(stored.updates[0], Update::Modify { .. }));
    assert!(
        stored.antecedents.contains(&txn1),
        "modify depends on insert"
    );

    cdss.reconcile(&dresden).unwrap();
    let ops = cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(ops.contains(&tuple!["HIV", "gp120", "V2"]));
    assert!(!ops.contains(&tuple!["HIV", "gp120", "V1"]));
}
