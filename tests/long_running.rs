//! A long-running collaboration: many epochs of interleaved publication,
//! reconciliation, modification, deletion, and conflict resolution across
//! the Figure 2 network — the closest thing to the paper's "tested
//! extensively on small- to medium-sized networks with update-heavy
//! workloads".

use orchestra_core::demo;
use orchestra_relational::{tuple, Value};
use orchestra_updates::{PeerId, Update};

fn p(name: &str) -> PeerId {
    PeerId::new(name)
}

#[test]
fn ten_epochs_of_collaboration() {
    let mut cdss = demo::figure2().unwrap();
    let (alaska, beijing, dresden) = (p("Alaska"), p("Beijing"), p("Dresden"));

    // Epochs 1–4: Alaska curates four organisms, reconciling in between.
    for i in 1..=4i64 {
        cdss.publish_transaction(
            &alaska,
            vec![
                Update::insert("O", tuple![format!("org{i}"), i]),
                Update::insert("P", tuple![format!("prot{i}"), 100 + i]),
                Update::insert("S", tuple![i, 100 + i, format!("SEQ-{i}")]),
            ],
        )
        .unwrap();
        if i % 2 == 0 {
            cdss.reconcile_all().unwrap();
        }
    }
    cdss.reconcile_all().unwrap();
    assert_eq!(
        cdss.peer(&dresden)
            .unwrap()
            .instance()
            .relation("OPS")
            .unwrap()
            .len(),
        4
    );

    // Epoch 5: Beijing fixes a sequence (modify), Dresden contributes a
    // new organism through Σ2.
    cdss.publish_transaction(
        &beijing,
        vec![Update::modify(
            "S",
            tuple![2, 102, "SEQ-2"],
            tuple![2, 102, "SEQ-2-FIXED"],
        )],
    )
    .unwrap();
    cdss.publish_transaction(
        &dresden,
        vec![Update::insert(
            "OPS",
            tuple!["deepsea", "luciferase", "LUX"],
        )],
    )
    .unwrap();
    cdss.reconcile_all().unwrap();

    let dresden_ops = cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(dresden_ops.contains(&tuple!["org2", "prot2", "SEQ-2-FIXED"]));
    assert!(!dresden_ops.contains(&tuple!["org2", "prot2", "SEQ-2"]));
    // Alaska received the invented-id split of Dresden's row.
    let alaska_o = cdss
        .peer(&alaska)
        .unwrap()
        .instance()
        .relation("O")
        .unwrap();
    assert!(alaska_o
        .iter()
        .any(|t| t[0] == Value::str("deepsea") && t[1].is_labeled_null()));

    // Epoch 6: Alaska retracts organism 3's sequence entirely.
    cdss.publish_transaction(&alaska, vec![Update::delete("S", tuple![3, 103, "SEQ-3"])])
        .unwrap();
    cdss.reconcile_all().unwrap();
    let dresden_ops = cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(!dresden_ops.contains(&tuple!["org3", "prot3", "SEQ-3"]));

    // Epoch 7: a genuine conflict (Alaska vs Beijing on a fresh key),
    // deferred at Dresden, resolved in Alaska's favor this time.
    let a_claim = cdss
        .publish_transaction(
            &alaska,
            vec![Update::insert("S", tuple![1, 102, "CROSS-A"])],
        )
        .unwrap();
    let b_claim = cdss
        .publish_transaction(
            &beijing,
            vec![Update::insert("S", tuple![1, 102, "CROSS-B"])],
        )
        .unwrap();
    let report = cdss.reconcile(&dresden).unwrap();
    assert_eq!(report.outcome.deferred.len(), 2);
    let res = cdss.resolve(&dresden, &a_claim).unwrap();
    assert!(res.outcome.accepted.iter().any(|t| t.id == a_claim));
    assert!(res.outcome.rejected.contains(&b_claim));
    let dresden_ops = cdss
        .peer(&dresden)
        .unwrap()
        .instance()
        .relation("OPS")
        .unwrap();
    assert!(dresden_ops.contains(&tuple!["org1", "prot2", "CROSS-A"]));

    // Drain: the other peers still need to see the conflict epoch.
    cdss.reconcile_all().unwrap();
    // Steady state: nothing new, reconciles are no-ops; system counters
    // look sane.
    let reports = cdss.reconcile_all().unwrap();
    for (_, r) in &reports {
        assert_eq!(r.candidates, 0);
    }
    let stats = cdss.stats();
    assert!(stats.published_txns >= 9);
    assert!(stats.epoch >= 10, "logical clock advanced per exchange");

    // Final convergence on the Σ1 pair (concrete portions).
    let concrete = |peer: &PeerId, rel: &str| {
        cdss.peer(peer)
            .unwrap()
            .instance()
            .relation(rel)
            .unwrap()
            .iter()
            .filter(|t| !t.has_labeled_null())
            .cloned()
            .collect::<Vec<_>>()
    };
    // One more round so Beijing sees the conflict resolution outcome
    // (Dresden's decision is local; Alaska/Beijing see both claims —
    // selective disagreement, so only the shared concrete data must
    // match between the Σ1 peers after their own exchanges).
    for rel in ["O", "P"] {
        assert_eq!(concrete(&alaska, rel), concrete(&beijing, rel), "{rel}");
    }
}
