//! A two-terminal gossiping mesh: run one process per peer and watch
//! anti-entropy pull published history across the wire.
//!
//! Terminal 1 — peer A publishes a few rows and serves its archive:
//! ```text
//! cargo run --example mesh_gossip -- --host A --bind 127.0.0.1:7801 --publish 3
//! ```
//!
//! Terminal 2 — peer B joins A, pulls what it misses, and reconciles
//! its instance through the `A.R → B.R` mapping:
//! ```text
//! cargo run --example mesh_gossip -- --host B --bind 127.0.0.1:7802 \
//!     --join 127.0.0.1:7801
//! ```
//!
//! Both sides keep gossiping for `--watch` seconds (default 20), so you
//! can start more peers, publish from either end (`--publish` works on
//! B too — gossip is symmetric), or kill and restart one side and watch
//! the frozen cursor resume. Every node also *serves* its archive, so a
//! third terminal can `--join` either of the first two.

use orchestra_datalog::{Atom, Tgd};
use orchestra_mesh::{InterestMode, MeshNode, MeshOptions};
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_updates::{PeerId, Update};
use std::time::{Duration, Instant};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

/// The shared picture both processes declare: peers A and B, and a
/// mapping copying A's `R` into B's.
fn cdss() -> orchestra_core::Cdss {
    orchestra_core::Cdss::builder()
        .peer("A", schema(), TrustPolicy::open(1))
        .peer("B", schema(), TrustPolicy::open(1))
        .mapping(
            Tgd::new(
                "MA->B/R",
                vec![Atom::vars("A.R", &["k", "v"])],
                vec![Atom::vars("B.R", &["k", "v"])],
            )
            .unwrap(),
        )
        .build()
        .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut host = "A".to_string();
    let mut bind = "127.0.0.1:0".to_string();
    let mut joins: Vec<String> = Vec::new();
    let mut publish = 0u64;
    let mut watch = 20u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().expect("flag needs a value");
        match a.as_str() {
            "--host" => host = val(),
            "--bind" => bind = val(),
            "--join" => joins.push(val()),
            "--publish" => publish = val().parse()?,
            "--watch" => watch = val().parse()?,
            other => panic!("unknown flag {other} (see the example header)"),
        }
    }

    let peer = PeerId::new(host.as_str());
    let mut node = MeshNode::start_hosting(
        host.clone(),
        cdss(),
        vec![peer.clone()],
        bind.as_str(),
        MeshOptions {
            fanout: 2,
            interest: InterestMode::Everything,
            ..MeshOptions::default()
        },
    )?;
    println!("{host}: serving archive at {}", node.addr());
    for addr in joins {
        node.join(addr.as_str())?;
        println!("{host}: joined {addr}");
    }

    for i in 0..publish {
        let id = node.cdss_mut().publish_transaction(
            &peer,
            vec![Update::insert("R", tuple![i as i64, watch as i64])],
        )?;
        println!("{host}: published {id}");
    }

    // Gossip until the watch window closes, reporting whenever the
    // archive or the hosted instance grows.
    let deadline = Instant::now() + Duration::from_secs(watch);
    let mut last_len = usize::MAX;
    while Instant::now() < deadline {
        let (round, _recon) = node.converge_step()?;
        let len = node.cdss().store().len();
        if len != last_len {
            let rows = node
                .cdss()
                .peer(&peer)?
                .instance()
                .relation("R")
                .map(|r| r.len())
                .unwrap_or(0);
            println!(
                "{host}: archive {len} txns (+{} this round), instance R has {rows} rows",
                round.absorbed
            );
            last_len = len;
        }
        std::thread::sleep(Duration::from_millis(500));
    }
    println!("{host}: done");
    Ok(())
}
