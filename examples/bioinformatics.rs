//! The paper's Figure 2 bioinformatics CDSS, narrated end to end — the
//! CLI stand-in for the demonstration's Java GUI (Figure 3): it prints
//! the mappings, each peer's state, and the original vs. translated
//! updates at every step.
//!
//! Run with `cargo run --example bioinformatics`.

use orchestra_core::demo;
use orchestra_relational::tuple;
use orchestra_updates::{PeerId, Update};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cdss = demo::figure2()?;
    let alaska = PeerId::new("Alaska");
    let beijing = PeerId::new("Beijing");
    let crete = PeerId::new("Crete");
    let dresden = PeerId::new("Dresden");

    println!("═══ The CDSS of Figure 2 ═══");
    println!("Peers: Alaska (Σ1), Beijing (Σ1), Crete (Σ2), Dresden (Σ2)");
    println!("\nSchema mappings:");
    for m in cdss.mappings() {
        println!("  {m}");
    }
    println!("\nTrust: Alaska, Beijing, Dresden trust everyone (priority 1);");
    println!("       Crete trusts only Beijing (2) and Dresden (1).");

    // ── Alaska curates Σ1 data ────────────────────────────────────────
    println!("\n═══ Alaska publishes HIV reference sequences (one transaction) ═══");
    let txn = cdss.publish_transaction(
        &alaska,
        vec![
            Update::insert("O", tuple!["HIV-1", 1]),
            Update::insert("P", tuple!["gp120", 10]),
            Update::insert("P", tuple!["gp41", 11]),
            Update::insert("S", tuple![1, 10, "MRVKEKYQHLWRWGWRWGTM"]),
            Update::insert("S", tuple![1, 11, "AVGIGALFLGFLGAAGSTMG"]),
        ],
    )?;
    println!("published: {}", cdss.store().fetch(&txn)?.unwrap());

    // ── Dresden reconciles: Σ1 → Σ2 join ─────────────────────────────
    println!("\n═══ Dresden reconciles (MA→C join, then MC→D identity) ═══");
    let report = cdss.reconcile(&dresden)?;
    for t in &report.outcome.accepted {
        println!("translated + accepted: {t}");
    }
    println!("{}", cdss.peer(&dresden)?.instance());

    // ── Dresden contributes back: Σ2 → Σ1 split invents ids ──────────
    println!("═══ Dresden publishes a new organism (OPS row) ═══");
    let txn = cdss.publish_transaction(
        &dresden,
        vec![Update::insert(
            "OPS",
            tuple!["Rattus norvegicus", "p53", "MEEPQSDPSVEPPLSQETFS"],
        )],
    )?;
    println!("published: {}", cdss.store().fetch(&txn)?.unwrap());

    println!("\n═══ Alaska reconciles (MD→C identity, MC→A split) ═══");
    let report = cdss.reconcile(&alaska)?;
    for t in &report.outcome.accepted {
        println!("translated + accepted: {t}");
    }
    println!("note the invented labeled-null ids (Skolem terms over `org`/`prot`):");
    println!("{}", cdss.peer(&alaska)?.instance());

    // ── Trust in action at Crete ──────────────────────────────────────
    println!("═══ Crete reconciles: trusts Beijing/Dresden, distrusts Alaska ═══");
    let report = cdss.reconcile(&crete)?;
    println!(
        "accepted {} transaction(s), rejected {:?}, deferred {:?}",
        report.outcome.accepted.len(),
        report.outcome.rejected,
        report.outcome.deferred,
    );
    println!("Dresden's Rat row arrived; Alaska's HIV rows did not:");
    println!("{}", cdss.peer(&crete)?.instance());

    // ── Beijing syncs everything ──────────────────────────────────────
    println!("═══ Beijing reconciles (identity from Alaska + split round trip) ═══");
    cdss.reconcile(&beijing)?;
    println!("{}", cdss.peer(&beijing)?.instance());

    let stats = cdss.stats();
    println!(
        "═══ system stats ═══\nepoch {}  published txns {}  store archived {}",
        stats.epoch,
        stats.published_txns,
        cdss.store().len()
    );
    Ok(())
}
