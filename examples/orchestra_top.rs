//! `orchestra-top` — poll every node of a cluster over the wire and
//! watch its metrics move.
//!
//! Each argument is a peer address; the tool polls the v2 `METRICS`
//! opcode on every one of them each interval and prints the counters
//! that moved since the previous poll (a remote answers with its whole
//! process registry — store, mesh, engine, fault — not just the
//! server). Start a cluster, e.g. two `mesh_gossip` terminals, then:
//!
//! ```text
//! cargo run --example orchestra_top -- 127.0.0.1:7801 127.0.0.1:7802
//! ```
//!
//! Flags:
//! * `--interval <secs>` — poll period (default 2)
//! * `--once` — one poll, then exit (handy for scripts)
//! * `--prefix <p>` — only names starting with `p` (e.g. `store.wal.`)
//! * `--full` — dump the whole snapshot (text form) instead of movers
//! * `--json` — dump the whole snapshot as JSON instead of movers
//!
//! See `docs/observability.md` for the metric catalog.

use orchestra_net::{RemoteOptions, RemoteStore};
use std::collections::BTreeMap;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addrs: Vec<String> = Vec::new();
    let mut interval = 2.0f64;
    let mut once = false;
    let mut prefix = String::new();
    let mut full = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().expect("flag needs a value");
        match a.as_str() {
            "--interval" => interval = val().parse()?,
            "--once" => once = true,
            "--prefix" => prefix = val(),
            "--full" => full = true,
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                panic!("unknown flag {flag} (see the example header)")
            }
            addr => addrs.push(addr.to_string()),
        }
    }
    if addrs.is_empty() {
        eprintln!("usage: orchestra_top [flags] <addr>...");
        std::process::exit(2);
    }

    let opts = RemoteOptions {
        connect_timeout: Duration::from_millis(500),
        retries: 0,
        ..RemoteOptions::default()
    };
    // Lazy connections: a node that is down just shows as unreachable
    // this tick and is retried on the next one.
    let nodes: Vec<(String, RemoteStore)> = addrs
        .into_iter()
        .map(|a| {
            let remote = RemoteStore::lazy_with(a.as_str(), opts)?;
            Ok((a, remote))
        })
        .collect::<Result<_, orchestra_store::StoreError>>()?;

    let mut last: Vec<BTreeMap<String, u64>> = vec![BTreeMap::new(); nodes.len()];
    let mut tick = 0u64;
    loop {
        for (i, (addr, remote)) in nodes.iter().enumerate() {
            let snap = match remote.metrics() {
                Ok(s) => s.filtered(&prefix),
                Err(e) => {
                    println!("== {addr}: unreachable ({e})");
                    continue;
                }
            };
            println!("== {addr} (tick {tick})");
            if json {
                println!("{}", snap.to_json());
                continue;
            }
            if full {
                print!("{}", snap.render_text());
                continue;
            }
            let mut moved = 0usize;
            for (name, v) in &snap.counters {
                let prev = last[i].get(name).copied().unwrap_or(0);
                if tick == 0 || *v != prev {
                    println!("  {name:<40} +{:<8} (total {v})", v - prev.min(*v));
                    moved += 1;
                }
                last[i].insert(name.clone(), *v);
            }
            for (name, v) in &snap.gauges {
                if *v != 0 {
                    println!("  {name:<40} ={v}");
                    moved += 1;
                }
            }
            for h in &snap.histograms {
                if let Some(mean) = h.sum.checked_div(h.count) {
                    println!("  {:<40} n={} mean={}us", h.name, h.count, mean);
                    moved += 1;
                }
            }
            if moved == 0 {
                println!("  (idle)");
            }
        }
        if once {
            return Ok(());
        }
        tick += 1;
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}
