//! Intermittent connectivity — the paper's demonstration scenario 5 over
//! the simulated peer-to-peer store: Beijing publishes and "goes offline";
//! storage nodes churn; Alaska still retrieves everything because the
//! archive is replicated. The final act swaps in the durable WAL-backed
//! store and shows the archive surviving a full process "restart".
//!
//! Run with `cargo run --example offline_sync`.

use orchestra_core::demo;
use orchestra_relational::tuple;
use orchestra_store::{DurableStore, ReplicatedStore, UpdateStore};
use orchestra_updates::{PeerId, Update};
use std::sync::Arc;

/// A thin forwarding wrapper so the example can keep a handle to the
/// replicated store (for churn control) while the CDSS owns a boxed one.
struct Shared(Arc<ReplicatedStore>);

impl UpdateStore for Shared {
    fn publish(
        &self,
        epoch: orchestra_updates::Epoch,
        txns: Vec<orchestra_updates::Transaction>,
    ) -> orchestra_store::Result<()> {
        self.0.publish(epoch, txns)
    }
    fn fetch_page(
        &self,
        cursor: &orchestra_store::FetchCursor,
        limit: usize,
    ) -> orchestra_store::Result<orchestra_store::FetchPage> {
        self.0.fetch_page(cursor, limit)
    }
    fn fetch(
        &self,
        id: &orchestra_updates::TxnId,
    ) -> orchestra_store::Result<Option<orchestra_updates::Transaction>> {
        self.0.fetch(id)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn latest_epoch(&self) -> Option<orchestra_updates::Epoch> {
        self.0.latest_epoch()
    }
    fn stats(&self) -> orchestra_store::StoreStats {
        self.0.stats()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-node simulated DHT with replication factor 3.
    let dht = Arc::new(ReplicatedStore::new(12, 3)?);
    let mut cdss = demo::figure2_with_store(Box::new(Shared(Arc::clone(&dht))))?;
    let alaska = PeerId::new("Alaska");
    let beijing = PeerId::new("Beijing");

    println!("═══ Beijing publishes two transactions, then goes offline ═══");
    let ids = cdss.publish_transactions(
        &beijing,
        vec![
            vec![
                Update::insert("O", tuple!["Mouse", 10]),
                Update::insert("P", tuple!["Tp53", 20]),
            ],
            vec![Update::insert("S", tuple![10, 20, "MEEPQSDPSV"])],
        ],
    )?;
    println!("  archived: {ids:?}");
    println!(
        "  store: {} txns on {} nodes (replication ×{})",
        dht.len(),
        dht.num_nodes(),
        dht.replication()
    );

    println!("\n═══ Storage churn: 2 of 12 nodes fail ═══");
    dht.take_node_down(3);
    dht.take_node_down(7);
    println!(
        "  alive nodes: {}, payload availability: {:.0}%",
        dht.alive_nodes(),
        dht.availability() * 100.0
    );

    println!("\n═══ Alaska reconciles — Beijing plays no part in retrieval ═══");
    let report = cdss.reconcile(&alaska)?;
    println!(
        "  fetched {} txns, accepted {}, applied {} updates",
        report.fetched,
        report.outcome.accepted.len(),
        report.applied_updates
    );
    println!("{}", cdss.peer(&alaska)?.instance());

    let stats = dht.stats();
    println!(
        "store stats: published {}  fetched {}  probes {}  misses {}",
        stats.published, stats.fetched, stats.probes, stats.misses
    );

    println!("═══ Contrast: replication factor 1 under the same churn ═══");
    let fragile = ReplicatedStore::new(12, 1)?;
    fragile.publish(
        orchestra_updates::Epoch::new(1),
        (0..50)
            .map(|i| {
                orchestra_updates::Transaction::new(
                    orchestra_updates::TxnId::new(PeerId::new("B"), i),
                    orchestra_updates::Epoch::new(1),
                    vec![Update::insert("O", tuple![format!("org{i}"), i as i64])],
                )
            })
            .collect(),
    )?;
    for n in 0..4 {
        fragile.take_node_down(n);
    }
    println!(
        "  after 4/12 node failures with R=1: availability {:.0}% (one-shot fetch fails: {})",
        fragile.availability() * 100.0,
        fragile
            .fetch_since(orchestra_updates::Epoch::zero())
            .is_err()
    );
    // The paged read path makes partial progress instead: every reachable
    // payload is delivered, every gap is reported with its position so a
    // peer can freeze its cursor there and retry later.
    let start = orchestra_store::FetchCursor::after_epoch(orchestra_updates::Epoch::zero());
    let (mut reachable, mut lost, mut pages) = (0usize, 0usize, 0usize);
    for page in orchestra_store::pages(&fragile, start, 16) {
        let page = page?;
        reachable += page.txns.len();
        lost += page.unavailable.len();
        pages += 1;
    }
    println!(
        "  paged fetch instead makes partial progress: {reachable}/{} payloads \
         delivered across {pages} pages, {lost} gaps reported for retry",
        reachable + lost
    );

    println!("\n═══ Durable archive: the store itself survives a restart ═══");
    let dir = std::env::temp_dir().join(format!("orchestra-offline-sync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        // First "process lifetime": Beijing publishes to the WAL-backed
        // archive, then everything is dropped — the crash/restart.
        let store = DurableStore::open(&dir)?;
        let mut cdss = demo::figure2_with_store(Box::new(store))?;
        cdss.publish_transaction(
            &beijing,
            vec![
                Update::insert("O", tuple!["Rat", 30]),
                Update::insert("P", tuple!["Ins1", 40]),
                Update::insert("S", tuple![30, 40, "MALWMRLLPL"]),
            ],
        )?;
    }
    // Second lifetime: reopen recovers the archive from disk.
    let store = DurableStore::open(&dir)?;
    println!(
        "  reopened from {}: {} txns recovered, latest epoch {:?}",
        dir.display(),
        store.durable_stats().recovered_txns,
        store.latest_epoch()
    );
    let mut cdss = demo::figure2_with_store(Box::new(store))?;
    let report = cdss.reconcile(&alaska)?;
    println!(
        "  Alaska reconciles against the recovered archive: fetched {}, applied {} updates",
        report.fetched, report.applied_updates
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
