//! Quickstart: the smallest useful CDSS — two lab databases sharing one
//! table through an identity mapping.
//!
//! Run with `cargo run --example quickstart`.

use orchestra_core::Cdss;
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_updates::{PeerId, Update};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A schema shared by both peers: gene(symbol*, description).
    let schema = DatabaseSchema::new("genes").with_relation(RelationSchema::from_parts_keyed(
        "gene",
        &[("symbol", ValueType::Str), ("descr", ValueType::Str)],
        &["symbol"],
    )?)?;

    // 2. Two peers that trust each other, joined by identity mappings.
    let mut cdss = Cdss::builder()
        .peer("LabA", schema.clone(), TrustPolicy::open(1))
        .peer("LabB", schema, TrustPolicy::open(1))
        .identity("LabA", "LabB")?
        .build()?;
    let lab_a = PeerId::new("LabA");
    let lab_b = PeerId::new("LabB");

    // 3. LabA publishes a transaction.
    let txn = cdss.publish_transaction(
        &lab_a,
        vec![
            Update::insert("gene", tuple!["TP53", "tumor protein p53"]),
            Update::insert("gene", tuple!["MDM2", "E3 ubiquitin ligase"]),
        ],
    )?;
    println!("LabA published {txn} at epoch {}", cdss.current_epoch());

    // 4. LabB reconciles: the CDSS fetches, translates and applies.
    let report = cdss.reconcile(&lab_b)?;
    println!(
        "LabB reconciled: {} candidate(s), {} accepted, {} tuple updates applied",
        report.candidates,
        report.outcome.accepted.len(),
        report.applied_updates
    );

    // 5. Local autonomy: LabB edits its own copy and shares back.
    {
        let peer = cdss.peer_mut(&lab_b)?;
        peer.instance_mut()
            .upsert("gene", tuple!["TP53", "tumor suppressor p53 (reviewed)"])?;
    }
    let txn = cdss.publish(&lab_b)?.expect("pending local edits");
    println!("LabB published {txn} (diff-based, with provenance-derived dependency)");
    let stored = cdss.store().fetch(&txn)?.unwrap();
    println!(
        "  antecedents: {:?}",
        stored
            .antecedents
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    cdss.reconcile(&lab_a)?;
    println!("\nLabA's instance after the round trip:");
    println!("{}", cdss.peer(&lab_a)?.instance());
    Ok(())
}
