//! A tour of the provenance semiring framework (PODS'07) on real
//! update-exchange provenance: one translated tuple, many readings.
//!
//! Run with `cargo run --example provenance_tour`.

use orchestra_core::demo;
use orchestra_provenance::{Boolean, Counting, Polynomial, Semiring, Tropical};
use orchestra_relational::tuple;
use orchestra_updates::{PeerId, Update};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cdss = demo::figure2()?;
    let alaska = PeerId::new("Alaska");
    let beijing = PeerId::new("Beijing");
    let dresden = PeerId::new("Dresden");

    // Two independent supports for the same OPS row at Dresden: Alaska's
    // triple and Beijing's triple (different ids, same org/prot/seq).
    cdss.publish_transaction(
        &alaska,
        vec![
            Update::insert("O", tuple!["HIV-1", 1]),
            Update::insert("P", tuple!["gp120", 2]),
            Update::insert("S", tuple![1, 2, "MRVKEKYQ"]),
        ],
    )?;
    cdss.publish_transaction(
        &beijing,
        vec![
            Update::insert("O", tuple!["HIV-1", 7]),
            Update::insert("P", tuple!["gp120", 8]),
            Update::insert("S", tuple![7, 8, "MRVKEKYQ"]),
        ],
    )?;
    cdss.reconcile(&dresden)?;

    let peer = cdss.peer(&dresden)?;
    let target = tuple!["HIV-1", "gp120", "MRVKEKYQ"];
    let poly: Polynomial<_> = peer
        .provenance("OPS", &target)
        .expect("translated tuple has provenance");

    println!("═══ Provenance of Dresden's OPS{target} ═══\n");
    println!("N[X] polynomial over base-tuple tokens:\n  {poly}\n");
    println!("Each token is a published base tuple:");
    for v in poly.variables() {
        let (publisher, tup) = peer
            .node_transaction(v)
            .map(|txn| (txn.peer.name().to_string(), v))
            .unwrap();
        println!("  {tup} ← published by {publisher}");
    }

    // ── The provenance hierarchy ──────────────────────────────────────
    println!("\n═══ Coarser views (the PODS'07 hierarchy) ═══");
    println!("B[X]  (drop coefficients): {}", poly.drop_coefficients());
    println!("Trio  (drop exponents):    {}", poly.drop_exponents());
    println!("Why   (witness sets):      {}", poly.why());
    println!("PosB  (minimal witnesses): {}", poly.why().minimize());
    println!(
        "Lin   (flat lineage):      {:?}",
        poly.lineage()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    // ── Semiring evaluations ──────────────────────────────────────────
    println!("\n═══ Semiring evaluations (the universal property of N[X]) ═══");

    // Counting: how many derivations?
    let count = poly.eval(|_| Counting(1));
    println!("derivation count (ℕ, +, ×):        {count}");

    // Boolean with Alaska's tokens dead: still derivable via Beijing.
    let alaska_tokens: BTreeSet<_> = poly
        .variables()
        .into_iter()
        .filter(|v| peer.node_transaction(*v).is_some_and(|t| t.peer == alaska))
        .collect();
    let without_alaska = poly.eval(|v| Boolean(!alaska_tokens.contains(v)));
    println!("derivable without Alaska (B, ∨, ∧): {without_alaska}");
    let nothing_dead = poly.eval(|_| Boolean(true));
    println!("derivable with everything (B):      {nothing_dead}");

    // Tropical: cheapest derivation if Alaska's data costs 5/token and
    // Beijing's costs 1/token (e.g. inverse trust weights).
    let cheapest = poly.eval(|v| {
        let owner = peer.node_transaction(*v).unwrap();
        Tropical::cost(if owner.peer == alaska { 5 } else { 1 })
    });
    println!("cheapest derivation (min, +):       {cheapest}");

    // Restriction: the polynomial over the sub-database without Alaska.
    let restricted = poly.restrict_without(&alaska_tokens);
    println!("\npolynomial restricted to Beijing-only support:\n  {restricted}");

    // And the well-founded check agrees with the Boolean evaluation.
    assert_eq!(!restricted.is_zero(), without_alaska.0);
    println!("\n(restriction non-zero ⇔ Boolean evaluation: verified)");
    Ok(())
}
