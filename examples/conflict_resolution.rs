//! Conflict deferral and manual resolution — the paper's demonstration
//! scenario 4, narrated: two equally-trusted peers publish conflicting
//! sequence claims; Dresden defers both; a dependent update arrives and is
//! deferred transitively; the administrator resolves the conflict and the
//! winner's chain applies automatically.
//!
//! Run with `cargo run --example conflict_resolution`.

use orchestra_core::demo;
use orchestra_relational::tuple;
use orchestra_updates::{PeerId, Update};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cdss = demo::figure2()?;
    let alaska = PeerId::new("Alaska");
    let beijing = PeerId::new("Beijing");
    let crete = PeerId::new("Crete");
    let dresden = PeerId::new("Dresden");

    // Shared context: Alaska names the organism and protein; Beijing
    // learns the ids before the two diverge.
    cdss.publish_transaction(
        &alaska,
        vec![
            Update::insert("O", tuple!["HIV-1", 1]),
            Update::insert("P", tuple!["gp120", 2]),
        ],
    )?;
    cdss.reconcile(&beijing)?;

    println!("═══ Beijing and Alaska publish conflicting sequence claims ═══");
    let alaska_txn = cdss.publish_transaction(
        &alaska,
        vec![Update::insert("S", tuple![1, 2, "SEQ-ALASKA-VARIANT"])],
    )?;
    let beijing_txn = cdss.publish_transaction(
        &beijing,
        vec![Update::insert("S", tuple![1, 2, "SEQ-BEIJING-VARIANT"])],
    )?;
    println!("  {alaska_txn}: S(1,2) = SEQ-ALASKA-VARIANT");
    println!("  {beijing_txn}: S(1,2) = SEQ-BEIJING-VARIANT");

    println!("\n═══ Dresden reconciles: same priority ⇒ defer both ═══");
    let report = cdss.reconcile(&dresden)?;
    println!(
        "  deferred: {:?}",
        report
            .outcome
            .deferred
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    for (a, b) in cdss.peer(&dresden)?.open_conflicts() {
        println!("  open conflict: {a} vs {b} (awaiting the administrator)");
    }
    assert!(cdss.peer(&dresden)?.instance().relation("OPS")?.is_empty());

    println!("\n═══ Crete reconciles (prefers Beijing) and modifies its update ═══");
    cdss.reconcile(&crete)?;
    let crete_txn = cdss.publish_transaction(
        &crete,
        vec![Update::modify(
            "OPS",
            tuple!["HIV-1", "gp120", "SEQ-BEIJING-VARIANT"],
            tuple!["HIV-1", "gp120", "SEQ-CRETE-CURATED"],
        )],
    )?;
    let stored = cdss.store().fetch(&crete_txn)?.unwrap();
    println!("  {stored}");

    println!("\n═══ Dresden reconciles again: transitive deferral ═══");
    let report = cdss.reconcile(&dresden)?;
    println!(
        "  deferred (depends on deferred Beijing txn): {:?}",
        report
            .outcome
            .deferred
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    println!("\n═══ The administrator resolves in favor of {beijing_txn} ═══");
    let res = cdss.resolve(&dresden, &beijing_txn)?;
    println!(
        "  accepted automatically: {:?}",
        res.outcome
            .accepted
            .iter()
            .map(|t| t.id.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "  rejected (loser + dependents): {:?}",
        res.outcome
            .rejected
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    println!("\nDresden's final instance (Crete's curated value won through):");
    println!("{}", cdss.peer(&dresden)?.instance());
    assert!(cdss
        .peer(&dresden)?
        .instance()
        .relation("OPS")?
        .contains(&tuple!["HIV-1", "gp120", "SEQ-CRETE-CURATED"]));
    Ok(())
}
