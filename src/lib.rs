//! # orchestra-suite
//!
//! Workspace umbrella for the Orchestra CDSS reproduction: re-exports the
//! member crates and hosts the cross-crate integration tests (`tests/`)
//! and runnable examples (`examples/`).
//!
//! See the individual crates for the system layers:
//!
//! * [`orchestra_relational`] — storage substrate
//! * [`orchestra_provenance`] — semiring provenance
//! * [`orchestra_datalog`] — mapping/chase engine
//! * [`orchestra_updates`] — updates, transactions, dependency graphs
//! * [`orchestra_store`] — the (simulated) P2P update archive
//! * [`orchestra_net`] — wire protocol + peer server/client
//! * [`orchestra_mesh`] — epidemic anti-entropy across mesh nodes
//! * [`orchestra_reconcile`] — trust + reconciliation
//! * [`orchestra_core`] — the CDSS itself

pub use orchestra_core as core;
pub use orchestra_datalog as datalog;
pub use orchestra_mesh as mesh;
pub use orchestra_net as net;
pub use orchestra_provenance as provenance;
pub use orchestra_reconcile as reconcile;
pub use orchestra_relational as relational;
pub use orchestra_store as store;
pub use orchestra_updates as updates;
